"""Markov (call-graph linear-system) invocation estimation (paper §5.2).

Functions are nodes; the multiplier on arc F→G is the estimated number
of calls from F to G per invocation of F (the summed local frequencies
of F's call sites targeting G).  ``main`` receives external flow 1 and
the system ``f = e + W^T f`` is solved for all functions at once.

Two C realities need repair (paper §5.2.1–5.2.2):

* **Function pointers** — indirect calls route through a synthetic
  pointer node whose outgoing arcs reach every address-taken function,
  weighted by static address-of counts.
* **Recursion** — estimated arc weights can be numerically impossible
  (a self-arc above 1 means "calls itself more than once per call",
  i.e. never returns), yielding negative solutions.  Repair sequence:
  (1) clamp direct-recursion arcs above 1 to 0.8; (2) if the global
  solution still has negative entries, solve each SCC in isolation
  against an artificial main (entry flow ``m/n`` per member), scaling
  the SCC's internal arcs down by a constant until its solution is
  nonnegative and below a ceiling of 5; (3) re-solve the global system
  with the scaled arcs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import POINTER_NODE
from repro.callgraph.scc import strongly_connected_components
from repro.estimators.base import (
    IntraEstimator,
    intra_estimates,
    local_call_site_frequency,
)
from repro.linalg.solve import SingularMatrixError
from repro.linalg.sparse import solve_flow_rows
from repro.program import Program

#: Clamp value for impossible direct-recursion arcs (paper: 0.8).
DEFAULT_RECURSION_CLAMP = 0.8

#: Ceiling on per-function estimates inside SCC subproblems (paper: 5).
DEFAULT_SCC_CEILING = 5.0

#: Factor applied repeatedly to an SCC's internal arcs until solvable.
SCC_SCALE_STEP = 0.75

_NEGATIVE_TOLERANCE = -1e-9


@dataclass
class CallGraphSystem:
    """The weighted call graph the Markov model solves."""

    nodes: list[str]
    #: (caller, callee) -> estimated calls per caller invocation.
    weights: dict[tuple[str, str], float] = field(default_factory=dict)
    entry: str = "main"

    def successors(self, node: str) -> list[str]:
        return [
            callee for (caller, callee) in self.weights if caller == node
        ]

    def solve(self, method: str = "auto") -> dict[str, float]:
        """Solve ``f = e + W^T f``; raises SingularMatrixError.

        Built directly in sparse dict-row form (one entry per call-graph
        arc plus the diagonal) and dispatched on density; ``method``
        forces the ``"dense"`` oracle or the ``"sparse"`` solver.
        """
        index = {name: i for i, name in enumerate(self.nodes)}
        n = len(self.nodes)
        rows: list[dict[int, float]] = [{i: 1.0} for i in range(n)]
        for (caller, callee), weight in self.weights.items():
            row = rows[index[callee]]
            j = index[caller]
            row[j] = row.get(j, 0.0) - weight
        rhs = [0.0] * n
        if self.entry in index:
            rhs[index[self.entry]] = 1.0
        solution = solve_flow_rows(rows, rhs, method=method)
        return {name: solution[index[name]] for name in self.nodes}


def build_call_graph_system(
    program: Program,
    estimates: dict[str, dict[int, float]],
) -> CallGraphSystem:
    """Arc weights from intra-procedural estimates (merged per pair)."""
    weights: dict[tuple[str, str], float] = {}
    uses_pointer_node = False
    for site in program.call_sites():
        frequency = local_call_site_frequency(site, estimates)
        if site.callee is not None:
            key = (site.caller, site.callee)
        else:
            key = (site.caller, POINTER_NODE)
            uses_pointer_node = True
        weights[key] = weights.get(key, 0.0) + frequency
    nodes = list(program.function_names)
    if uses_pointer_node:
        nodes.append(POINTER_NODE)
        address_taken = program.call_graph.address_taken
        total = sum(address_taken.values())
        if total > 0:
            for name, count in address_taken.items():
                if name in program.cfgs:
                    weights[(POINTER_NODE, name)] = count / total
    return CallGraphSystem(nodes=nodes, weights=weights)


def clamp_direct_recursion(
    system: CallGraphSystem, clamp: float = DEFAULT_RECURSION_CLAMP
) -> list[str]:
    """Repair #1: self-arcs above 1 become ``clamp``.  Returns the
    functions whose arcs were clamped."""
    repaired: list[str] = []
    for (caller, callee), weight in list(system.weights.items()):
        if caller == callee and weight > 1.0:
            system.weights[(caller, callee)] = clamp
            repaired.append(caller)
    return repaired


def _has_negative(solution: dict[str, float]) -> bool:
    return any(value < _NEGATIVE_TOLERANCE for value in solution.values())


def _scc_subproblem_solves(
    system: CallGraphSystem,
    members: list[str],
    scale: float,
    ceiling: float,
) -> bool:
    """Solve one SCC against an artificial main; True when the solution
    is nonnegative and below the ceiling (paper's stricter criterion)."""
    member_set = set(members)
    incoming: dict[str, float] = {name: 0.0 for name in members}
    for (caller, callee), weight in system.weights.items():
        if callee in member_set and caller not in member_set:
            incoming[callee] += weight
    if system.entry in member_set:
        incoming[system.entry] += 1.0
    total_in = sum(incoming.values())
    if total_in <= 0:
        # Unreachable SCC: its estimates are all zero, trivially fine.
        return True
    artificial = "<artificial-main>"
    sub = CallGraphSystem(nodes=[artificial] + members, entry=artificial)
    for name in members:
        sub.weights[(artificial, name)] = incoming[name] / total_in
    for (caller, callee), weight in system.weights.items():
        if caller in member_set and callee in member_set:
            sub.weights[(caller, callee)] = weight * scale
    try:
        solution = sub.solve()
    except SingularMatrixError:
        return False
    # A pure self-loop clamped to 0.8 amplifies exactly 1/(1-0.8) = 5,
    # the paper's ceiling; a relative tolerance keeps round-off from
    # rejecting that boundary case.
    ceiling_with_slack = ceiling * (1.0 + 1e-9) + 1e-9
    for name in members:
        value = solution[name]
        if value < _NEGATIVE_TOLERANCE or value > ceiling_with_slack:
            return False
    return True


def repair_sccs(
    system: CallGraphSystem,
    ceiling: float = DEFAULT_SCC_CEILING,
    scale_step: float = SCC_SCALE_STEP,
    max_rounds: int = 60,
) -> dict[str, float]:
    """Repair #2: per-SCC probability scaling.  Returns the scale
    applied to each SCC (keyed by a member name) for diagnostics."""
    applied: dict[str, float] = {}
    components = strongly_connected_components(
        system.nodes, system.successors
    )
    for members in components:
        cyclic = len(members) > 1 or (
            (members[0], members[0]) in system.weights
        )
        if not cyclic:
            continue
        scale = 1.0
        rounds = 0
        while not _scc_subproblem_solves(
            system, members, scale, ceiling
        ):
            scale *= scale_step
            rounds += 1
            if rounds >= max_rounds:
                break
        if scale != 1.0:
            member_set = set(members)
            for key in list(system.weights):
                caller, callee = key
                if caller in member_set and callee in member_set:
                    system.weights[key] *= scale
            applied[members[0]] = scale
    return applied


def solve_with_repair(
    system: CallGraphSystem,
    clamp: float = DEFAULT_RECURSION_CLAMP,
    ceiling: float = DEFAULT_SCC_CEILING,
) -> dict[str, float]:
    """The full §5.2.2 pipeline on an already-built system."""
    clamp_direct_recursion(system, clamp)
    try:
        solution = system.solve()
        if not _has_negative(solution):
            return solution
    except SingularMatrixError:
        pass
    repair_sccs(system, ceiling)
    try:
        solution = system.solve()
        if not _has_negative(solution):
            return solution
    except SingularMatrixError:
        pass
    # Last resort: damp every arc uniformly until the system yields.
    damping = 0.9
    for _ in range(20):
        for key in system.weights:
            system.weights[key] *= damping
        try:
            solution = system.solve()
            if not _has_negative(solution):
                return solution
        except SingularMatrixError:
            continue
    raise SingularMatrixError(
        "call-graph system unsolvable even after damping"
    )


def invocations_from_estimates(
    program: Program,
    estimates: dict[str, dict[int, float]],
    clamp: float = DEFAULT_RECURSION_CLAMP,
    ceiling: float = DEFAULT_SCC_CEILING,
) -> dict[str, float]:
    """The call-graph Markov pipeline on precomputed intra estimates.

    The pointer node's internal estimate is dropped from the result.
    """
    system = build_call_graph_system(program, estimates)
    solution = solve_with_repair(system, clamp, ceiling)
    solution.pop(POINTER_NODE, None)
    # Clip the tiny negatives tolerated above.
    return {name: max(value, 0.0) for name, value in solution.items()}


def markov_invocations(
    program: Program,
    estimator: "str | IntraEstimator" = "smart",
    clamp: float = DEFAULT_RECURSION_CLAMP,
    ceiling: float = DEFAULT_SCC_CEILING,
) -> dict[str, float]:
    """Function invocation estimates from the call-graph Markov model.

    With a registry estimator name and default repair parameters, the
    result comes from (and is memoized in) the program's
    :class:`~repro.analysis.session.AnalysisSession`, so repeated
    callers share one solve.
    """
    if (
        isinstance(estimator, str)
        and clamp == DEFAULT_RECURSION_CLAMP
        and ceiling == DEFAULT_SCC_CEILING
    ):
        from repro.analysis.session import AnalysisSession

        return AnalysisSession.of(program).invocations("markov", estimator)
    return invocations_from_estimates(
        program, intra_estimates(program, estimator), clamp, ceiling
    )
