"""Inter-procedural invocation estimators: simple combiners and Markov."""

from repro.estimators.inter.markov import (
    CallGraphSystem,
    build_call_graph_system,
    clamp_direct_recursion,
    markov_invocations,
    repair_sccs,
    solve_with_repair,
)
from repro.estimators.inter.simple import (
    SIMPLE_INTER_ESTIMATORS,
    all_rec2_invocations,
    all_rec_invocations,
    call_site_invocations,
    direct_invocations,
)

__all__ = [
    "CallGraphSystem",
    "SIMPLE_INTER_ESTIMATORS",
    "all_rec2_invocations",
    "all_rec_invocations",
    "build_call_graph_system",
    "call_site_invocations",
    "clamp_direct_recursion",
    "direct_invocations",
    "markov_invocations",
    "repair_sccs",
    "solve_with_repair",
]
