"""Intra-procedural block-frequency estimators: loop, smart, markov."""

from repro.estimators.intra.astwalk import (
    AstFrequencyWalker,
    estimate_block_frequencies,
    loop_estimator,
    map_frequencies_to_blocks,
    smart_estimator,
)
from repro.estimators.intra.markov import (
    markov_estimator,
    solve_flow_system,
    transition_probabilities,
)

__all__ = [
    "AstFrequencyWalker",
    "estimate_block_frequencies",
    "loop_estimator",
    "map_frequencies_to_blocks",
    "markov_estimator",
    "smart_estimator",
    "solve_flow_system",
    "transition_probabilities",
]
