"""The *loop* and *smart* intra-procedural estimators (paper §4.2).

Both are a single top-down AST walk that assigns every statement an
estimated execution frequency, normalized to one entry of the function
(Figure 3).  The walk:

* multiplies loop bodies by ``iterations - 1`` and loop tests by
  ``iterations`` (a loop "executing five times" runs its body four
  times per the paper's Figure 3);
* splits ``if`` arms 50/50 (*loop*) or by the branch-prediction
  heuristics with the 0.8/0.2 split (*smart*);
* weights ``switch`` arms uniformly or by case-label count;
* **ignores** ``break``, ``continue``, ``goto``, and ``return`` — the
  paper is explicit that the AST-based model does not account for them
  (that is the Markov model's edge).

The statement frequencies are then mapped onto CFG basic blocks.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.block import (
    BasicBlock,
    CondBranch,
    ControlFlowGraph,
    Jump,
    ReturnTerm,
    SwitchBranch,
)
from repro.cfg.dominators import reverse_postorder
from repro.frontend import ast_nodes as ast
from repro.prediction.heuristics import (
    HeuristicSettings,
    predict_condition,
)
from repro.prediction.predictor import label_weighted_switch_weights
from repro.program import Program


class AstFrequencyWalker:
    """Computes statement and test frequencies for one function."""

    def __init__(
        self,
        use_branch_heuristics: bool,
        settings: Optional[HeuristicSettings] = None,
    ):
        self.use_branch_heuristics = use_branch_heuristics
        self.settings = settings or HeuristicSettings()
        #: statement node id -> estimated executions per function entry.
        self.statement_frequency: dict[int, float] = {}
        #: construct node id (If/While/For/DoWhile/Switch) -> frequency
        #: of its controlling test.
        self.test_frequency: dict[int, float] = {}

    def walk_function(self, function: ast.FunctionDef) -> None:
        self._statement(function.body, 1.0)

    # ------------------------------------------------------------------

    def _branch_probability(
        self, statement: ast.If
    ) -> float:
        """Probability that the condition is true."""
        if not self.use_branch_heuristics:
            return 0.5
        prediction = predict_condition(
            statement.condition, "if", statement, self.settings
        )
        if prediction.is_constant:
            return prediction.taken_probability
        if prediction.reason == "default":
            return 0.5
        return prediction.taken_probability

    def _statement(self, statement: ast.Statement, frequency: float) -> None:
        self.statement_frequency[statement.node_id] = frequency
        iterations = self.settings.loop_iterations
        if isinstance(statement, ast.Compound):
            for item in statement.items:
                self._statement(item, frequency)
        elif isinstance(statement, ast.If):
            self.test_frequency[statement.node_id] = frequency
            probability = self._branch_probability(statement)
            self._statement(statement.then_branch, frequency * probability)
            if statement.else_branch is not None:
                self._statement(
                    statement.else_branch, frequency * (1.0 - probability)
                )
        elif isinstance(statement, ast.While):
            self.test_frequency[statement.node_id] = frequency * iterations
            self._statement(statement.body, frequency * (iterations - 1))
        elif isinstance(statement, ast.DoWhile):
            # A do-while body runs at least once; with the same trip
            # guess the body matches the while body's count.
            body_frequency = frequency * max(iterations - 1, 1)
            self.test_frequency[statement.node_id] = body_frequency
            self._statement(statement.body, body_frequency)
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self._statement(statement.init, frequency)
            self.test_frequency[statement.node_id] = frequency * iterations
            body_frequency = frequency * (iterations - 1)
            self._statement(statement.body, body_frequency)
            # The step expression is not a statement node; its
            # frequency rides along with the body.
        elif isinstance(statement, ast.Switch):
            self.test_frequency[statement.node_id] = frequency
            weights = self._switch_case_weights(statement)
            for case, weight in zip(statement.cases, weights):
                for item in case.body:
                    self._statement(item, frequency * weight)
        elif isinstance(statement, ast.LabeledStatement):
            self._statement(statement.statement, frequency)
        # Return/Break/Continue/Goto/Declaration/ExpressionStatement:
        # recorded above, no children to scale.

    def _switch_case_weights(self, statement: ast.Switch) -> list[float]:
        arm_count = len(statement.cases) + (
            0 if statement.has_default else 1
        )
        if arm_count == 0:
            return []
        if not (
            self.use_branch_heuristics
            and self.settings.weight_switch_by_labels
        ):
            return [1.0 / arm_count] * len(statement.cases)
        label_counts = [
            (1 if case.is_default else len(case.values))
            for case in statement.cases
        ]
        total = sum(label_counts) + (0 if statement.has_default else 1)
        if total == 0:
            return [1.0 / arm_count] * len(statement.cases)
        return [count / total for count in label_counts]


def map_frequencies_to_blocks(
    cfg: ControlFlowGraph, walker: AstFrequencyWalker
) -> dict[int, float]:
    """Project AST statement frequencies onto CFG basic blocks.

    A block takes the frequency of its first statement; condition-only
    blocks take the test frequency of their originating construct;
    return blocks take their return statement's frequency.  Structural
    connector blocks (empty, unconditional jump) inherit from their
    successor; the entry block is pinned at 1.
    """
    frequencies: dict[int, float] = {}
    for block in cfg:
        frequency = _mapped_frequency(block, walker)
        if frequency is not None:
            frequencies[block.block_id] = frequency
    frequencies[cfg.entry_id] = frequencies.get(cfg.entry_id, 1.0)
    # Connectors: propagate from successors in reverse order of
    # reverse-postorder so chains resolve in one pass most of the time.
    order = reverse_postorder(cfg)
    for _ in range(len(order)):
        changed = False
        for block_id in reversed(order):
            if block_id in frequencies:
                continue
            successors = cfg.successors(block_id)
            known = [
                frequencies[s] for s in successors if s in frequencies
            ]
            if known:
                frequencies[block_id] = known[0]
                changed = True
        if not changed:
            break
    for block_id in cfg.blocks:
        frequencies.setdefault(block_id, 0.0)
    return frequencies


def _mapped_frequency(
    block: BasicBlock, walker: AstFrequencyWalker
) -> Optional[float]:
    for statement in block.statements:
        frequency = walker.statement_frequency.get(statement.node_id)
        if frequency is not None:
            return frequency
    terminator = block.terminator
    if isinstance(terminator, (CondBranch, SwitchBranch)):
        origin = terminator.origin
        if origin is not None:
            frequency = walker.test_frequency.get(origin.node_id)
            if frequency is not None:
                return frequency
    if isinstance(terminator, ReturnTerm) and terminator.origin is not None:
        return walker.statement_frequency.get(terminator.origin.node_id)
    if isinstance(terminator, Jump):
        return None  # Connector: resolved by successor propagation.
    return None


def estimate_block_frequencies(
    program: Program,
    function_name: str,
    use_branch_heuristics: bool,
    settings: Optional[HeuristicSettings] = None,
) -> dict[int, float]:
    """Block frequency estimates for one function, one entry = 1."""
    if settings is None:
        from repro.prediction.error_functions import settings_for_program

        settings = settings_for_program(program)
    walker = AstFrequencyWalker(use_branch_heuristics, settings)
    walker.walk_function(program.function(function_name))
    return map_frequencies_to_blocks(program.cfg(function_name), walker)


def loop_estimator(
    program: Program,
    function_name: str,
    settings: Optional[HeuristicSettings] = None,
) -> dict[int, float]:
    """The paper's *loop* estimator: loop structure only."""
    return estimate_block_frequencies(
        program, function_name, use_branch_heuristics=False,
        settings=settings,
    )


def smart_estimator(
    program: Program,
    function_name: str,
    settings: Optional[HeuristicSettings] = None,
) -> dict[int, float]:
    """The paper's *smart* estimator: loops + branch heuristics."""
    return estimate_block_frequencies(
        program, function_name, use_branch_heuristics=True,
        settings=settings,
    )
