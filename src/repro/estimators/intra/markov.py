"""Markov (CFG linear-system) intra-procedural estimation (paper §5.1).

The relative execution frequency of each block is a linear function of
its predecessors' frequencies, with branch probabilities as
multipliers.  With the entry pinned at 1 this is the system

    f = e + P^T f        i.e.        (I - P^T) f = e

solved exactly, where ``P[i][j]`` is the probability that block ``i``
transfers control to block ``j``.  Unlike the AST model, the solution
reflects ``break``/``continue``/``goto``/``return`` — e.g. strchr's
loop test solves to 2.78 rather than 5 because the early ``return``
drains flow out of the loop (Figure 7).

Degenerate CFGs (a cycle with total probability 1 and no exit, e.g.
``for(;;)`` whose only exits the predictor weighted at 0) make
``I - P^T`` singular; we then damp all transition probabilities by a
constant factor and retry, which mirrors the paper's probability
scaling for inconsistent systems.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.block import (
    CondBranch,
    ControlFlowGraph,
    Jump,
    ReturnTerm,
    SwitchBranch,
)
from repro.linalg.solve import SingularMatrixError
from repro.linalg.sparse import solve_flow_rows
from repro.prediction.predictor import BranchPredictor, HeuristicPredictor
from repro.program import Program

#: Damping factors tried in order when the flow system is singular.
DAMPING_FACTORS = (1.0, 0.9999, 0.999, 0.99, 0.9, 0.5)


def transition_probabilities(
    cfg: ControlFlowGraph, predictor: BranchPredictor
) -> dict[int, dict[int, float]]:
    """Per-block successor probabilities under ``predictor``.

    Parallel edges (e.g. a conditional branch whose arms reach the same
    block) are merged by summing.
    """
    transitions: dict[int, dict[int, float]] = {}
    for block in cfg:
        row: dict[int, float] = {}
        terminator = block.terminator
        if isinstance(terminator, Jump):
            row[terminator.target] = 1.0
        elif isinstance(terminator, CondBranch):
            prediction = predictor.predict_branch(
                cfg.function_name, block, terminator
            )
            p = prediction.taken_probability
            # Constant conditions keep a sliver of flow on the dead arm
            # so the system stays well-posed; ranking is unaffected.
            p = min(max(p, 1e-9), 1.0 - 1e-9)
            row[terminator.true_target] = (
                row.get(terminator.true_target, 0.0) + p
            )
            row[terminator.false_target] = (
                row.get(terminator.false_target, 0.0) + (1.0 - p)
            )
        elif isinstance(terminator, SwitchBranch):
            for target, weight in predictor.switch_weights(
                cfg.function_name, block, terminator
            ).items():
                row[target] = row.get(target, 0.0) + weight
        elif isinstance(terminator, ReturnTerm):
            pass  # Exit: no successors.
        transitions[block.block_id] = row
    return transitions


def solve_flow_system(
    cfg: ControlFlowGraph,
    transitions: dict[int, dict[int, float]],
    method: str = "auto",
) -> dict[int, float]:
    """Solve ``f = e + P^T f`` for the CFG, entry pinned at 1.

    The system ``I - P^T`` is built directly in sparse dict-row form
    (one entry per CFG edge plus the diagonal) and dispatched on
    density; ``method`` forces ``"dense"`` (the oracle) or
    ``"sparse"``.  Damps the transition probabilities and retries when
    singular.  Raises :class:`SingularMatrixError` if even heavy
    damping fails.
    """
    block_ids = sorted(cfg.blocks)
    index = {block_id: i for i, block_id in enumerate(block_ids)}
    n = len(block_ids)
    last_error: Optional[SingularMatrixError] = None
    for damping in DAMPING_FACTORS:
        rows: list[dict[int, float]] = [{i: 1.0} for i in range(n)]
        for source, row in transitions.items():
            j = index[source]
            for target, probability in row.items():
                target_row = rows[index[target]]
                target_row[j] = (
                    target_row.get(j, 0.0) - probability * damping
                )
        rhs = [0.0] * n
        rhs[index[cfg.entry_id]] = 1.0
        try:
            solution = solve_flow_rows(rows, rhs, method=method)
        except SingularMatrixError as error:
            last_error = error
            continue
        return {
            block_id: solution[index[block_id]] for block_id in block_ids
        }
    assert last_error is not None
    raise last_error


def markov_estimator(
    program: Program,
    function_name: str,
    predictor: Optional[BranchPredictor] = None,
) -> dict[int, float]:
    """Markov block-frequency estimates (entry = 1) for one function.

    Uses the *smart* heuristic predictor's probabilities by default —
    the paper applies the Markov technique "with the same estimated
    probabilities used for the smart intra-procedural heuristic".
    """
    if predictor is None:
        from repro.prediction.error_functions import settings_for_program

        predictor = HeuristicPredictor(settings_for_program(program))
    cfg = program.cfg(function_name)
    transitions = transition_probabilities(cfg, predictor)
    return solve_flow_system(cfg, transitions)
