"""The central :class:`Program` object: one compiled C program.

Bundles the translation unit, per-function CFGs, and the call graph, and
is what estimators, the profiler, and the experiment harness all
consume.  Construct one with :func:`Program.from_source`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.callgraph import CallGraph, CallSite, build_call_graph
from repro.cfg import ControlFlowGraph, build_all_cfgs
from repro.frontend import compile_source
from repro.frontend.ast_nodes import FunctionDef, TranslationUnit


@dataclass(eq=False)
class Program:
    """A compiled program plus its derived analysis artifacts."""

    unit: TranslationUnit
    cfgs: dict[str, ControlFlowGraph]
    call_graph: CallGraph
    name: str = "<program>"
    source: str = field(default="", repr=False)

    @classmethod
    def from_source(
        cls,
        source: str,
        name: str = "<program>",
        include_dirs: Optional[list[str]] = None,
        virtual_headers: Optional[dict[str, str]] = None,
        predefined: Optional[dict[str, str]] = None,
    ) -> "Program":
        """Preprocess, parse, and analyze C source text."""
        unit = compile_source(
            source,
            name,
            include_dirs=include_dirs,
            virtual_headers=virtual_headers,
            predefined=predefined,
        )
        cfgs = build_all_cfgs(unit)
        call_graph = build_call_graph(unit, cfgs)
        return cls(
            unit=unit,
            cfgs=cfgs,
            call_graph=call_graph,
            name=name,
            source=source,
        )

    # ------------------------------------------------------------------
    # Convenience accessors.

    @property
    def function_names(self) -> list[str]:
        return self.unit.function_names()

    def function(self, name: str) -> FunctionDef:
        return self.unit.function(name)

    def cfg(self, name: str) -> ControlFlowGraph:
        return self.cfgs[name]

    def call_sites(self, include_builtins: bool = False) -> list[CallSite]:
        return self.call_graph.call_sites(include_builtins)

    def block_count(self) -> int:
        """Total basic blocks across all functions."""
        return sum(len(cfg) for cfg in self.cfgs.values())

    def has_function(self, name: str) -> bool:
        return any(f.name == name for f in self.unit.functions)
