"""Profile data: the event counts one program execution produces.

A :class:`Profile` is the ground truth every estimator is scored
against.  The interpreter records:

* basic-block execution counts, per function;
* arc (CFG edge) traversal counts;
* conditional-branch outcomes (taken/not-taken per branch block);
* function entry counts;
* call-site execution counts, including which function an indirect call
  actually reached.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class BranchOutcome:
    """Dynamic outcomes of one conditional branch."""

    taken: int = 0
    not_taken: int = 0

    @property
    def total(self) -> int:
        return self.taken + self.not_taken

    @property
    def majority_taken(self) -> bool:
        """The direction a perfect static predictor would pick."""
        return self.taken >= self.not_taken

    def misses_if_predicted(self, predict_taken: bool) -> int:
        return self.not_taken if predict_taken else self.taken


class Profile:
    """Event counts from one run (or an aggregate of runs)."""

    def __init__(self, program_name: str = "", input_name: str = ""):
        self.program_name = program_name
        self.input_name = input_name
        #: function -> block id -> executions.
        self.block_counts: dict[str, dict[int, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        #: function -> (source block, target block) -> traversals.
        self.arc_counts: dict[str, dict[tuple[int, int], float]] = (
            defaultdict(lambda: defaultdict(float))
        )
        #: function -> branch block id -> outcomes.
        self.branch_outcomes: dict[str, dict[int, BranchOutcome]] = (
            defaultdict(dict)
        )
        #: function -> entry count.
        self.function_entries: dict[str, float] = defaultdict(float)
        #: call site id (Call node id) -> executions.
        self.call_site_counts: dict[int, float] = defaultdict(float)
        #: (call site id, resolved callee) -> executions.
        self.call_target_counts: dict[tuple[int, str], float] = defaultdict(
            float
        )
        #: total block executions (all functions).
        self.total_block_executions: float = 0.0
        #: exit status of the run, if it ran to completion.
        self.exit_status: int | None = None

    # ------------------------------------------------------------------
    # Recording interface (used by the interpreter).

    def record_function_entry(self, function: str) -> None:
        self.function_entries[function] += 1

    def record_block(self, function: str, block_id: int) -> None:
        self.block_counts[function][block_id] += 1
        self.total_block_executions += 1

    def record_arc(self, function: str, source: int, target: int) -> None:
        self.arc_counts[function][(source, target)] += 1

    def record_branch(
        self, function: str, block_id: int, taken: bool
    ) -> None:
        outcome = self.branch_outcomes[function].get(block_id)
        if outcome is None:
            outcome = BranchOutcome()
            self.branch_outcomes[function][block_id] = outcome
        if taken:
            outcome.taken += 1
        else:
            outcome.not_taken += 1

    def record_call(self, site_id: int, callee: str) -> None:
        self.call_site_counts[site_id] += 1
        self.call_target_counts[(site_id, callee)] += 1

    # ------------------------------------------------------------------
    # Queries.

    def blocks_for(self, function: str) -> dict[int, float]:
        return dict(self.block_counts.get(function, {}))

    def entry_count(self, function: str) -> float:
        return self.function_entries.get(function, 0.0)

    def call_site_count(self, site_id: int) -> float:
        return self.call_site_counts.get(site_id, 0.0)

    def copy(self) -> "Profile":
        duplicate = Profile(self.program_name, self.input_name)
        for function, counts in self.block_counts.items():
            duplicate.block_counts[function] = defaultdict(
                float, counts
            )
        for function, arcs in self.arc_counts.items():
            duplicate.arc_counts[function] = defaultdict(float, arcs)
        for function, branches in self.branch_outcomes.items():
            duplicate.branch_outcomes[function] = {
                block_id: BranchOutcome(b.taken, b.not_taken)
                for block_id, b in branches.items()
            }
        duplicate.function_entries = defaultdict(
            float, self.function_entries
        )
        duplicate.call_site_counts = defaultdict(
            float, self.call_site_counts
        )
        duplicate.call_target_counts = defaultdict(
            float, self.call_target_counts
        )
        duplicate.total_block_executions = self.total_block_executions
        duplicate.exit_status = self.exit_status
        return duplicate

    def scale(self, factor: float) -> None:
        """Multiply every count by ``factor`` (used by normalization)."""
        for counts in self.block_counts.values():
            for key in counts:
                counts[key] *= factor
        for arcs in self.arc_counts.values():
            for key in arcs:
                arcs[key] *= factor
        for function in self.function_entries:
            self.function_entries[function] *= factor
        for key in self.call_site_counts:
            self.call_site_counts[key] *= factor
        for key in self.call_target_counts:
            self.call_target_counts[key] *= factor
        self.total_block_executions *= factor
        # Branch outcomes stay integral; miss rates are ratios so
        # scaling them is never needed.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Profile({self.program_name!r}, {self.input_name!r}, "
            f"{self.total_block_executions:.0f} block executions)"
        )
