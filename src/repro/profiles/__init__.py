"""Profile data structures and aggregation."""

from repro.profiles.aggregate import (
    aggregate_profiles,
    leave_one_out_aggregates,
    normalized_copy,
)
from repro.profiles.profile import BranchOutcome, Profile

__all__ = [
    "BranchOutcome",
    "Profile",
    "aggregate_profiles",
    "leave_one_out_aggregates",
    "normalized_copy",
]
