"""Profile data structures, aggregation, serialization, and caching."""

from repro.profiles.aggregate import (
    aggregate_profiles,
    leave_one_out_aggregates,
    normalized_copy,
)
from repro.profiles.cache import (
    cache_dir,
    cache_enabled,
    cache_info,
    cached_profile_for_source,
    clear_cache,
    load_cached_profile,
    profile_cache_key,
    store_profile,
)
from repro.profiles.profile import BranchOutcome, Profile
from repro.profiles.serialize import (
    dumps_profile,
    loads_profile,
    profile_from_dict,
    profile_to_dict,
    profiles_equal,
)

__all__ = [
    "BranchOutcome",
    "Profile",
    "aggregate_profiles",
    "cache_dir",
    "cache_enabled",
    "cache_info",
    "cached_profile_for_source",
    "clear_cache",
    "dumps_profile",
    "leave_one_out_aggregates",
    "load_cached_profile",
    "loads_profile",
    "normalized_copy",
    "profile_cache_key",
    "profile_from_dict",
    "profile_to_dict",
    "profiles_equal",
    "store_profile",
]
