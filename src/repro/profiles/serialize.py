"""Profile serialization: exact JSON round-trips for :class:`Profile`.

The persistent profile cache and the parallel profiling pipeline both
move profiles across process boundaries, so the encoding must be
*exact*: every count (floats included — counts are integral, well below
2**53, and JSON round-trips doubles exactly) and, just as importantly,
every **insertion order**.  Profiles record events in execution order
and downstream consumers iterate their dicts, so a profile that came
back from disk must iterate identically to one recorded in-process.
All mappings are therefore encoded as lists of ``[key, value]`` pairs
in iteration order rather than as JSON objects, which also lets us keep
non-string keys (block ids, arc tuples) typed.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any

from repro.profiles.profile import BranchOutcome, Profile

#: Bump when the encoding below changes shape; the cache keys on it.
PROFILE_FORMAT_VERSION = 1


def profile_to_dict(profile: Profile) -> dict[str, Any]:
    """Encode ``profile`` as JSON-serializable plain data."""
    return {
        "format": PROFILE_FORMAT_VERSION,
        "program_name": profile.program_name,
        "input_name": profile.input_name,
        "block_counts": [
            [function, list(map(list, counts.items()))]
            for function, counts in profile.block_counts.items()
        ],
        "arc_counts": [
            [
                function,
                [[source, target, count] for (source, target), count in arcs.items()],
            ]
            for function, arcs in profile.arc_counts.items()
        ],
        "branch_outcomes": [
            [
                function,
                [
                    [block_id, outcome.taken, outcome.not_taken]
                    for block_id, outcome in branches.items()
                ],
            ]
            for function, branches in profile.branch_outcomes.items()
        ],
        "function_entries": list(map(list, profile.function_entries.items())),
        "call_site_counts": list(map(list, profile.call_site_counts.items())),
        "call_target_counts": [
            [site_id, callee, count]
            for (site_id, callee), count in profile.call_target_counts.items()
        ],
        "total_block_executions": profile.total_block_executions,
        "exit_status": profile.exit_status,
    }


def profile_from_dict(data: dict[str, Any]) -> Profile:
    """Decode a :func:`profile_to_dict` payload back into a Profile."""
    version = data.get("format")
    if version != PROFILE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported profile format {version!r} "
            f"(expected {PROFILE_FORMAT_VERSION})"
        )
    profile = Profile(data["program_name"], data["input_name"])
    for function, pairs in data["block_counts"]:
        counts = profile.block_counts[function]
        for block_id, count in pairs:
            counts[block_id] = count
    for function, triples in data["arc_counts"]:
        arcs = profile.arc_counts[function]
        for source, target, count in triples:
            arcs[(source, target)] = count
    for function, triples in data["branch_outcomes"]:
        branches = profile.branch_outcomes[function]
        for block_id, taken, not_taken in triples:
            branches[block_id] = BranchOutcome(taken, not_taken)
    profile.function_entries = defaultdict(
        float, {name: count for name, count in data["function_entries"]}
    )
    profile.call_site_counts = defaultdict(
        float, {site_id: count for site_id, count in data["call_site_counts"]}
    )
    profile.call_target_counts = defaultdict(
        float,
        {
            (site_id, callee): count
            for site_id, callee, count in data["call_target_counts"]
        },
    )
    profile.total_block_executions = data["total_block_executions"]
    profile.exit_status = data["exit_status"]
    return profile


def dumps_profile(profile: Profile) -> str:
    """Profile -> compact JSON text."""
    return json.dumps(profile_to_dict(profile), separators=(",", ":"))


def loads_profile(text: str) -> Profile:
    """JSON text -> Profile."""
    return profile_from_dict(json.loads(text))


def profiles_equal(left: Profile, right: Profile) -> bool:
    """Exact equality of every count *and* iteration order.

    Used by the determinism tests: two profiles that compare equal here
    produce byte-identical rendered experiment output.
    """
    return profile_to_dict(left) == profile_to_dict(right)
