"""Profile normalization and aggregation (paper §3).

"To aggregate profiles, we normalized them to have the same total basic
block counts, then summed each block's counts."  Aggregates serve two
roles: the *profiling* baseline predicts each input from the aggregate
of all the other inputs' profiles, and Figure 10's third ranking uses an
aggregate of the remaining profiles.
"""

from __future__ import annotations

from typing import Sequence

from repro.profiles.profile import BranchOutcome, Profile


def normalized_copy(profile: Profile, target_total: float) -> Profile:
    """A copy scaled so its total block executions equal ``target_total``."""
    duplicate = profile.copy()
    if profile.total_block_executions > 0:
        duplicate.scale(target_total / profile.total_block_executions)
    return duplicate


def aggregate_profiles(profiles: Sequence[Profile]) -> Profile:
    """Normalize the given profiles to a common total, then sum them."""
    if not profiles:
        raise ValueError("cannot aggregate zero profiles")
    target = max(p.total_block_executions for p in profiles) or 1.0
    result = Profile(
        profiles[0].program_name,
        "+".join(p.input_name for p in profiles),
    )
    for profile in profiles:
        scaled = normalized_copy(profile, target)
        _accumulate(result, scaled)
    return result


def _accumulate(result: Profile, scaled: Profile) -> None:
    for function, counts in scaled.block_counts.items():
        sink = result.block_counts[function]
        for block_id, count in counts.items():
            sink[block_id] += count
    for function, arcs in scaled.arc_counts.items():
        sink_arcs = result.arc_counts[function]
        for arc, count in arcs.items():
            sink_arcs[arc] += count
    for function, branches in scaled.branch_outcomes.items():
        sink_branches = result.branch_outcomes[function]
        for block_id, outcome in branches.items():
            existing = sink_branches.get(block_id)
            if existing is None:
                existing = BranchOutcome()
                sink_branches[block_id] = existing
            existing.taken += outcome.taken
            existing.not_taken += outcome.not_taken
    for function, count in scaled.function_entries.items():
        result.function_entries[function] += count
    for site_id, count in scaled.call_site_counts.items():
        result.call_site_counts[site_id] += count
    for key, count in scaled.call_target_counts.items():
        result.call_target_counts[key] += count
    result.total_block_executions += scaled.total_block_executions


def leave_one_out_aggregates(
    profiles: Sequence[Profile],
) -> list[tuple[Profile, Profile]]:
    """Pairs ``(held_out, aggregate_of_the_rest)`` for the paper's
    profiling-baseline protocol.  Requires at least two profiles."""
    if len(profiles) < 2:
        raise ValueError(
            "leave-one-out evaluation needs at least two profiles"
        )
    pairs: list[tuple[Profile, Profile]] = []
    for index, held_out in enumerate(profiles):
        rest = [p for j, p in enumerate(profiles) if j != index]
        pairs.append((held_out, aggregate_profiles(rest)))
    return pairs
