"""Persistent on-disk profile cache.

Profiling is the expensive step every experiment shares: re-interpreting
the 14-program suite takes tens of seconds, and the CLI, the pytest
tier, and the benchmark harness each used to pay it from scratch.  This
module stores one JSON file per (program source, input text) pair under
a cache directory shared by all three consumers, keyed by a content
hash, so a source or input edit invalidates exactly the entries it
affects.

Layout::

    <cache dir>/
        <key>.json      # one serialized Profile per (source, input)

where ``<key>`` is a SHA-256 hex digest over:

* the program's full C source text,
* the input text,
* the interpreter semantics version (:data:`repro.interp.INTERP_VERSION`),
* the serialization format version, and
* the package version.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default:
  ``$XDG_CACHE_HOME/repro/profiles`` or ``~/.cache/repro/profiles``).
* ``REPRO_CACHE=0`` — disable the cache entirely.

Writes are atomic (tempfile + ``os.replace``), so concurrent writers —
the parallel pipeline's worker processes — can race on the same key
without corrupting entries; last writer wins with identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Callable, Optional

import repro
from repro.interp import INTERP_VERSION
from repro.obs import incr
from repro.profiles.profile import Profile
from repro.profiles.serialize import (
    PROFILE_FORMAT_VERSION,
    profile_from_dict,
    profile_to_dict,
)

_FALSEY = {"0", "no", "off", "false", ""}


def cache_enabled() -> bool:
    """Whether the persistent cache is on (``REPRO_CACHE`` knob)."""
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in _FALSEY


def cache_dir() -> str:
    """The cache directory (not necessarily created yet)."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "profiles")


def profile_cache_key(source: str, input_text: str) -> str:
    """Content hash identifying one (program, input) profile."""
    hasher = hashlib.sha256()
    for part in (
        f"interp={INTERP_VERSION}",
        f"format={PROFILE_FORMAT_VERSION}",
        f"package={repro.__version__}",
        source,
        input_text,
    ):
        encoded = part.encode("utf-8")
        hasher.update(str(len(encoded)).encode("ascii"))
        hasher.update(b":")
        hasher.update(encoded)
    return hasher.hexdigest()


def _entry_path(key: str, directory: Optional[str] = None) -> str:
    return os.path.join(directory or cache_dir(), f"{key}.json")


def load_cached_profile(
    key: str, directory: Optional[str] = None
) -> Optional[Profile]:
    """The cached profile for ``key``, or None on a miss.

    Unreadable or stale-format entries count as misses (and are left in
    place; a subsequent store overwrites them).
    """
    path = _entry_path(key, directory)
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        profile = profile_from_dict(json.loads(text))
    except (OSError, ValueError, KeyError, TypeError):
        incr("profile_cache.misses")
        return None
    incr("profile_cache.hits")
    incr("profile_cache.bytes_read", len(text))
    return profile


def store_profile(
    key: str, profile: Profile, directory: Optional[str] = None
) -> str:
    """Atomically write ``profile`` under ``key``; returns the path."""
    directory = directory or cache_dir()
    os.makedirs(directory, exist_ok=True)
    path = _entry_path(key, directory)
    payload = json.dumps(
        profile_to_dict(profile), separators=(",", ":")
    )
    incr("profile_cache.stores")
    incr("profile_cache.bytes_written", len(payload))
    fd, temp_path = tempfile.mkstemp(
        prefix=f".{key[:16]}-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path


def cached_profile_for_source(
    source: str,
    input_text: str,
    compute: "Callable[[], Profile]",
    directory: Optional[str] = None,
) -> Profile:
    """Profile for an arbitrary (source, input) pair, via the cache.

    ``compute`` interprets the program and returns its :class:`Profile`;
    it only runs on a miss (or with the cache disabled), and its result
    is stored for the next consumer.  This is the same content-hash
    keying the suite pipeline uses, so example programs (the strchr
    harness, figure 10's held-out compress run) share the cache with
    suite profiling.
    """
    if not cache_enabled():
        return compute()
    key = profile_cache_key(source, input_text)
    cached = load_cached_profile(key, directory)
    if cached is not None:
        return cached
    profile = compute()
    store_profile(key, profile, directory)
    return profile


def cache_info(directory: Optional[str] = None) -> dict[str, object]:
    """Summary of the cache: directory, entry count, total bytes, and
    the oldest/newest entry mtimes (Unix seconds, None when empty)."""
    directory = directory or cache_dir()
    summary = scan_cache_entries(directory)
    summary["enabled"] = cache_enabled()
    return summary


def scan_cache_entries(
    directory: str, suffixes: tuple[str, ...] = (".json",)
) -> dict[str, object]:
    """One pass over a cache directory's entries, shared by the
    profile, analysis, and codegen caches: counts, bytes, mtime range.
    ``suffixes`` selects which files count as entries (the codegen
    cache stores ``.py`` source plus ``.code`` marshal blobs)."""
    entries = 0
    total_bytes = 0
    oldest: Optional[float] = None
    newest: Optional[float] = None
    if os.path.isdir(directory):
        for name in os.listdir(directory):
            if not name.endswith(suffixes):
                continue
            entries += 1
            try:
                status = os.stat(os.path.join(directory, name))
            except OSError:
                continue
            total_bytes += status.st_size
            if oldest is None or status.st_mtime < oldest:
                oldest = status.st_mtime
            if newest is None or status.st_mtime > newest:
                newest = status.st_mtime
    return {
        "directory": directory,
        "entries": entries,
        "bytes": total_bytes,
        "oldest_mtime": oldest,
        "newest_mtime": newest,
    }


def clear_cache(directory: Optional[str] = None) -> int:
    """Delete every cache entry; returns how many were removed."""
    directory = directory or cache_dir()
    removed = 0
    if not os.path.isdir(directory):
        return 0
    for name in os.listdir(directory):
        if not (name.endswith(".json") or name.endswith(".tmp")):
            continue
        try:
            os.unlink(os.path.join(directory, name))
            removed += 1
        except OSError:
            pass
    return removed
