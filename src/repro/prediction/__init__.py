"""Static branch prediction: heuristics, predictors, miss-rate scoring."""

from repro.prediction.calibrated import (
    WU_LARUS_PROBABILITIES,
    CalibratedPredictor,
    calibrated_markov_estimator,
    combine_probabilities,
)
from repro.prediction.cfg_heuristics import (
    ExtendedHeuristicPredictor,
    ProgramExtendedPredictor,
    extended_predictor_for,
)
from repro.prediction.error_functions import (
    compute_error_functions,
    settings_for_program,
)
from repro.prediction.heuristics import (
    DEFAULT_LOOP_ITERATIONS,
    DEFAULT_TAKEN_PROBABILITY,
    BranchPrediction,
    HeuristicSettings,
    collect_predictions,
    predict_condition,
)
from repro.prediction.missrate import (
    MissRateReport,
    measure_miss_rate,
    measure_psp_miss_rate,
    perfect_static_predictor,
    switch_branch_fraction,
)
from repro.prediction.predictor import (
    BranchPredictor,
    HeuristicPredictor,
    ProfilePredictor,
    UniformPredictor,
    label_weighted_switch_weights,
)

__all__ = [
    "BranchPrediction",
    "BranchPredictor",
    "CalibratedPredictor",
    "ExtendedHeuristicPredictor",
    "ProgramExtendedPredictor",
    "WU_LARUS_PROBABILITIES",
    "calibrated_markov_estimator",
    "collect_predictions",
    "combine_probabilities",
    "extended_predictor_for",
    "DEFAULT_LOOP_ITERATIONS",
    "DEFAULT_TAKEN_PROBABILITY",
    "HeuristicPredictor",
    "HeuristicSettings",
    "MissRateReport",
    "ProfilePredictor",
    "UniformPredictor",
    "compute_error_functions",
    "label_weighted_switch_weights",
    "measure_miss_rate",
    "measure_psp_miss_rate",
    "perfect_static_predictor",
    "predict_condition",
    "settings_for_program",
    "switch_branch_fraction",
]
