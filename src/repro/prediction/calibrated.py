"""Calibrated branch probabilities (the paper's open question).

Paper §5.1 closes with: "It is an open question whether static branch
prediction can be accurate enough to make good use of the
intra-procedural Markov model (for example, by using a static predictor
that generates probabilities directly, rather than a true/false
guess)."

Wu & Larus answered it the same year ("Static Branch Frequency and
Program Profile Analysis", MICRO-27, 1994): give each Ball–Larus idiom
the empirically measured probability of being right, and combine the
evidence when several idioms fire on the same branch.  This module
implements that design on our idiom set:

* :data:`WU_LARUS_PROBABILITIES` — per-idiom hit rates (Wu & Larus
  Table 1, mapped onto our idiom names);
* :class:`CalibratedPredictor` — a drop-in
  :class:`~repro.prediction.predictor.BranchPredictor` that replaces
  each idiom's uniform 0.8 with its calibrated probability and fuses
  multiple firing idioms with Dempster–Shafer combination:

      p = p1*p2 / (p1*p2 + (1-p1)(1-p2))

The extension benchmark (``benchmarks/test_bench_extension_calibrated``)
measures whether this closes the gap the paper observed.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.block import BasicBlock, CondBranch, SwitchBranch
from repro.prediction.heuristics import (
    BranchPrediction,
    HeuristicSettings,
    collect_predictions,
)
from repro.prediction.predictor import (
    _uniform_switch_weights,
    label_weighted_switch_weights,
)

#: Per-idiom probability that the predicted direction is correct.
#: Values follow Wu & Larus's measured hit rates for the corresponding
#: Ball-Larus heuristics (loop branch 88%, pointer 60%, opcode 84%,
#: guard 62%, return 72%, store 55%, call/error 78%), with "constant"
#: certain by construction.
WU_LARUS_PROBABILITIES: dict[str, float] = {
    "constant": 1.0,
    "loop": 0.88,
    "pointer": 0.60,
    "opcode-eq": 0.84,
    "opcode-neg": 0.84,
    "error-call": 0.78,
    "multiple-ands": 0.62,
    "return": 0.72,
    "store": 0.55,
    "default": 0.50,
}


def combine_probabilities(first: float, second: float) -> float:
    """Dempster-Shafer combination of two taken-probabilities."""
    numerator = first * second
    denominator = numerator + (1.0 - first) * (1.0 - second)
    if denominator == 0.0:
        return 0.5  # Perfectly contradictory evidence.
    return numerator / denominator


class CalibratedPredictor:
    """A branch predictor that emits calibrated probabilities.

    ``combine_evidence=False`` uses only the highest-priority firing
    idiom (like the paper's *smart*, but with per-idiom probabilities);
    ``True`` fuses every firing idiom with Dempster–Shafer combination
    (full Wu–Larus).
    """

    def __init__(
        self,
        settings: Optional[HeuristicSettings] = None,
        probabilities: Optional[dict[str, float]] = None,
        combine_evidence: bool = True,
    ):
        self.settings = settings or HeuristicSettings()
        self.probabilities = dict(
            WU_LARUS_PROBABILITIES
            if probabilities is None
            else probabilities
        )
        self.combine_evidence = combine_evidence

    def _calibrated(self, prediction: BranchPrediction) -> float:
        """Taken-probability of one fired idiom under calibration."""
        confidence = self.probabilities.get(prediction.reason, 0.5)
        if prediction.is_constant:
            # Keep constants (nearly) certain; the Markov solver clips
            # them away from exactly 0/1 itself.
            return prediction.taken_probability
        return (
            confidence
            if prediction.predicted_taken
            else 1.0 - confidence
        )

    def predict_branch(
        self, function: str, block: BasicBlock, branch: CondBranch
    ) -> BranchPrediction:
        fired = collect_predictions(
            branch.condition, branch.kind, branch.origin, self.settings
        )
        if not fired:
            return BranchPrediction(0.5, "default")
        if fired[0].is_constant:
            return fired[0]
        if not self.combine_evidence:
            first = fired[0]
            return BranchPrediction(
                self._calibrated(first), f"calibrated:{first.reason}"
            )
        probability = self._calibrated(fired[0])
        reasons = [fired[0].reason]
        for prediction in fired[1:]:
            probability = combine_probabilities(
                probability, self._calibrated(prediction)
            )
            reasons.append(prediction.reason)
        return BranchPrediction(
            probability, "calibrated:" + "+".join(reasons)
        )

    def switch_weights(
        self, function: str, block: BasicBlock, switch: SwitchBranch
    ) -> dict[int, float]:
        if self.settings.weight_switch_by_labels:
            return label_weighted_switch_weights(switch)
        return _uniform_switch_weights(switch)


def calibrated_markov_estimator(
    program, function_name: str, combine_evidence: bool = True
):
    """Intra-procedural Markov estimation with calibrated probabilities
    (the extension's headline entry point)."""
    from repro.estimators.intra.markov import markov_estimator
    from repro.prediction.error_functions import settings_for_program

    predictor = CalibratedPredictor(
        settings_for_program(program), combine_evidence=combine_evidence
    )
    return markov_estimator(program, function_name, predictor)
