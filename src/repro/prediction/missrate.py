"""Branch-prediction miss-rate scoring (paper Figure 2).

The miss rate is the fraction of *dynamic* conditional branches whose
direction a predictor gets wrong, measured against a profile.  Per the
paper's protocol (§2, §4.1):

* branches whose controlling expression constant-folds are predicted
  but **excluded** from scoring (a real compiler would have removed
  them, and counting them flatters every predictor);
* ``switch`` statements are excluded (they are scored separately, and
  represent under 3% of dynamic branches);
* the *perfect static predictor* (PSP) predicts each branch's majority
  direction **in the evaluation profile itself** — the upper bound for
  any per-branch static scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.constfold import fold_condition
from repro.prediction.predictor import BranchPredictor, ProfilePredictor
from repro.profiles.profile import Profile
from repro.program import Program


@dataclass
class MissRateReport:
    """Dynamic branch prediction accuracy against one profile."""

    misses: float
    total: float
    #: Dynamic branches excluded because their condition was constant.
    excluded_constant: float

    @property
    def miss_rate(self) -> float:
        """Fraction of dynamic branches mispredicted (0 when no
        branches executed)."""
        return self.misses / self.total if self.total else 0.0


def measure_miss_rate(
    program: Program, predictor: BranchPredictor, profile: Profile
) -> MissRateReport:
    """Score ``predictor`` against the branch outcomes in ``profile``."""
    misses = 0.0
    total = 0.0
    excluded = 0.0
    for function_name, cfg in program.cfgs.items():
        outcomes = profile.branch_outcomes.get(function_name, {})
        for block, branch in cfg.conditional_branches():
            outcome = outcomes.get(block.block_id)
            if outcome is None or outcome.total == 0:
                continue
            if fold_condition(branch.condition) is not None:
                excluded += outcome.total
                continue
            prediction = predictor.predict_branch(
                function_name, block, branch
            )
            misses += outcome.misses_if_predicted(
                prediction.predicted_taken
            )
            total += outcome.total
    return MissRateReport(misses, total, excluded)


def perfect_static_predictor(profile: Profile) -> ProfilePredictor:
    """The PSP: a profile predictor evaluated on its own profile."""
    return ProfilePredictor(profile)


def measure_psp_miss_rate(
    program: Program, profile: Profile
) -> MissRateReport:
    """Miss rate of the perfect static predictor on ``profile``."""
    return measure_miss_rate(
        program, perfect_static_predictor(profile), profile
    )


def switch_branch_fraction(program: Program, profile: Profile) -> float:
    """Fraction of dynamic multi-way transfers among all dynamic
    branches (conditional + switch).

    The paper excludes switches from Figure 2 with the justification
    that they "account for less than 3% of dynamic branches on
    average"; this measures the same quantity for our suite.
    """
    conditional = 0.0
    for outcomes in profile.branch_outcomes.values():
        conditional += sum(o.total for o in outcomes.values())
    switch_executions = 0.0
    for function_name, cfg in program.cfgs.items():
        arcs = profile.arc_counts.get(function_name, {})
        for block, _ in cfg.switch_branches():
            switch_executions += sum(
                count
                for (source, _), count in arcs.items()
                if source == block.block_id
            )
    total = conditional + switch_executions
    return switch_executions / total if total else 0.0
