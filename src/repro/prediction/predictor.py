"""CFG-level branch predictors.

All predictors share one interface: given a function name, the branch's
block, and its :class:`~repro.cfg.block.CondBranch` terminator, return a
:class:`~repro.prediction.heuristics.BranchPrediction`; and given a
:class:`~repro.cfg.block.SwitchBranch`, return per-target weights.

* :class:`HeuristicPredictor` — the paper's *smart* predictor (AST
  idioms + loop model).
* :class:`UniformPredictor` — the paper's *loop* baseline: loops get
  the trip-count probability, every other branch is 50/50.
* :class:`ProfilePredictor` — predicts each branch's majority direction
  in a profile (aggregate other-input profiles for the paper's
  "profiling" columns, or the same profile for the perfect static
  predictor).
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.cfg.block import BasicBlock, CondBranch, SwitchBranch
from repro.prediction.heuristics import (
    BranchPrediction,
    HeuristicSettings,
    predict_condition,
)
from repro.profiles.profile import Profile


class BranchPredictor(Protocol):
    """What estimators need from a predictor."""

    def predict_branch(
        self, function: str, block: BasicBlock, branch: CondBranch
    ) -> BranchPrediction: ...

    def switch_weights(
        self, function: str, block: BasicBlock, switch: SwitchBranch
    ) -> dict[int, float]: ...


def _uniform_switch_weights(switch: SwitchBranch) -> dict[int, float]:
    targets = _switch_targets(switch)
    share = 1.0 / len(targets)
    return {target: share for target in targets}


def _switch_targets(switch: SwitchBranch) -> list[int]:
    """Distinct successor blocks of a switch, default included."""
    targets: list[int] = []
    for arm in switch.arms:
        if arm.target not in targets:
            targets.append(arm.target)
    if switch.default_target not in targets:
        targets.append(switch.default_target)
    return targets


def label_weighted_switch_weights(
    switch: SwitchBranch,
) -> dict[int, float]:
    """Weight each arm by its number of case labels (paper §4.1 fn 3);
    the default arm counts as one label."""
    labels: dict[int, int] = {}
    for arm in switch.arms:
        labels[arm.target] = labels.get(arm.target, 0) + len(arm.values)
    labels[switch.default_target] = labels.get(switch.default_target, 0) + 1
    total = sum(labels.values())
    return {target: count / total for target, count in labels.items()}


class HeuristicPredictor:
    """The paper's *smart* static predictor."""

    def __init__(self, settings: Optional[HeuristicSettings] = None):
        self.settings = settings or HeuristicSettings()

    def predict_branch(
        self, function: str, block: BasicBlock, branch: CondBranch
    ) -> BranchPrediction:
        return predict_condition(
            branch.condition, branch.kind, branch.origin, self.settings
        )

    def switch_weights(
        self, function: str, block: BasicBlock, switch: SwitchBranch
    ) -> dict[int, float]:
        if self.settings.weight_switch_by_labels:
            return label_weighted_switch_weights(switch)
        return _uniform_switch_weights(switch)


class UniformPredictor:
    """The paper's *loop* baseline: only the loop model, 50/50 branches."""

    def __init__(self, settings: Optional[HeuristicSettings] = None):
        self.settings = settings or HeuristicSettings()

    def predict_branch(
        self, function: str, block: BasicBlock, branch: CondBranch
    ) -> BranchPrediction:
        if branch.kind in ("loop", "do-loop"):
            return BranchPrediction(
                self.settings.loop_taken_probability, "loop"
            )
        return BranchPrediction(0.5, "uniform")

    def switch_weights(
        self, function: str, block: BasicBlock, switch: SwitchBranch
    ) -> dict[int, float]:
        return _uniform_switch_weights(switch)


class ProfilePredictor:
    """Predicts from recorded branch outcomes.

    For branches the profile never executed, falls back to the supplied
    static predictor (default: uninformative 0.5) — profiles cannot say
    anything about code the training inputs did not reach.
    """

    def __init__(
        self,
        profile: Profile,
        fallback: Optional[BranchPredictor] = None,
        smoothing: float = 0.0,
    ):
        self.profile = profile
        self.fallback = fallback
        self.smoothing = smoothing

    def predict_branch(
        self, function: str, block: BasicBlock, branch: CondBranch
    ) -> BranchPrediction:
        outcome = self.profile.branch_outcomes.get(function, {}).get(
            block.block_id
        )
        if outcome is None or outcome.total == 0:
            if self.fallback is not None:
                return self.fallback.predict_branch(function, block, branch)
            return BranchPrediction(0.5, "profile-unseen")
        taken = outcome.taken + self.smoothing
        total = outcome.total + 2 * self.smoothing
        return BranchPrediction(taken / total, "profile")

    def switch_weights(
        self, function: str, block: BasicBlock, switch: SwitchBranch
    ) -> dict[int, float]:
        arcs = self.profile.arc_counts.get(function, {})
        targets = _switch_targets(switch)
        counts = {
            target: arcs.get((block.block_id, target), 0.0)
            for target in targets
        }
        total = sum(counts.values())
        if total == 0:
            if self.fallback is not None:
                return self.fallback.switch_weights(function, block, switch)
            return _uniform_switch_weights(switch)
        return {target: count / total for target, count in counts.items()}
