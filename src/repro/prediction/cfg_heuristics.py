"""CFG-level prediction idioms (Ball–Larus heuristics needing
post-dominators).

The paper's predictor works on the AST; two of Ball & Larus's original
idioms need control-flow structure the AST view lacks:

* **Call heuristic (CH)** — a successor that contains a call and does
  not post-dominate the branch is unlikely to be taken (calls hide in
  error/slow paths);
* **Loop-exit heuristic (LEH)** — a successor that leaves the enclosing
  loop while the other stays inside is unlikely (stay in the loop).

:class:`ExtendedHeuristicPredictor` layers them under the AST idioms:
AST idioms fire first (they carry more semantic information), and these
CFG idioms catch branches the AST view left at 50/50.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.block import BasicBlock, CondBranch, ControlFlowGraph
from repro.cfg.loops import find_natural_loops
from repro.cfg.postdominators import post_dominators
from repro.frontend import ast_nodes as ast
from repro.prediction.heuristics import (
    BranchPrediction,
    HeuristicSettings,
    predict_condition,
)
from repro.prediction.predictor import HeuristicPredictor


def _block_contains_call(block: BasicBlock) -> bool:
    from repro.callgraph.builder import calls_in_block

    return bool(calls_in_block(block))


class _FunctionShape:
    """Post-dominators and loop membership, computed once per CFG."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self.pdom = post_dominators(cfg)
        self.loop_members: list[set[int]] = [
            loop.body for loop in find_natural_loops(cfg)
        ]

    def innermost_loop_with(self, block_id: int) -> Optional[set[int]]:
        containing = [
            body for body in self.loop_members if block_id in body
        ]
        if not containing:
            return None
        return min(containing, key=len)

    def call_heuristic(
        self, block: BasicBlock, branch: CondBranch, p: float
    ) -> Optional[BranchPrediction]:
        true_block = self.cfg.block(branch.true_target)
        false_block = self.cfg.block(branch.false_target)
        pdom_of_branch = self.pdom.get(block.block_id, set())
        true_fires = (
            _block_contains_call(true_block)
            and branch.true_target not in pdom_of_branch
        )
        false_fires = (
            _block_contains_call(false_block)
            and branch.false_target not in pdom_of_branch
        )
        if true_fires and not false_fires:
            return BranchPrediction(1.0 - p, "cfg-call")
        if false_fires and not true_fires:
            return BranchPrediction(p, "cfg-call")
        return None

    def loop_exit_heuristic(
        self, block: BasicBlock, branch: CondBranch, p: float
    ) -> Optional[BranchPrediction]:
        loop = self.innermost_loop_with(block.block_id)
        if loop is None:
            return None
        true_inside = branch.true_target in loop
        false_inside = branch.false_target in loop
        if true_inside and not false_inside:
            return BranchPrediction(p, "cfg-loop-exit")
        if false_inside and not true_inside:
            return BranchPrediction(1.0 - p, "cfg-loop-exit")
        return None


class ExtendedHeuristicPredictor(HeuristicPredictor):
    """The smart predictor plus the CFG-level Ball–Larus idioms.

    For each branch: the AST idioms are consulted first; when they are
    uninformative (0.5), the loop-exit and call heuristics get a shot.
    """

    def __init__(self, settings: Optional[HeuristicSettings] = None):
        super().__init__(settings)
        self._shapes: dict[int, _FunctionShape] = {}

    def _shape(self, cfg: ControlFlowGraph) -> _FunctionShape:
        shape = self._shapes.get(id(cfg))
        if shape is None:
            shape = _FunctionShape(cfg)
            self._shapes[id(cfg)] = shape
        return shape

    def predict_branch_in_cfg(
        self,
        cfg: ControlFlowGraph,
        block: BasicBlock,
        branch: CondBranch,
    ) -> BranchPrediction:
        ast_prediction = predict_condition(
            branch.condition, branch.kind, branch.origin, self.settings
        )
        if ast_prediction.reason != "default":
            return ast_prediction
        shape = self._shape(cfg)
        p = self.settings.taken_probability
        loop_exit = shape.loop_exit_heuristic(block, branch, p)
        if loop_exit is not None:
            return loop_exit
        call = shape.call_heuristic(block, branch, p)
        if call is not None:
            return call
        return ast_prediction

    def predict_branch(
        self, function: str, block: BasicBlock, branch: CondBranch
    ) -> BranchPrediction:
        # Without the CFG in hand (protocol compatibility), fall back
        # to the AST idioms; prefer predict_branch_in_cfg when callers
        # can supply the CFG.
        return predict_condition(
            branch.condition, branch.kind, branch.origin, self.settings
        )


def extended_predictor_for(program) -> "ProgramExtendedPredictor":
    """An extended predictor bound to one program, so the plain
    BranchPredictor protocol can reach the CFGs."""
    return ProgramExtendedPredictor(program)


class ProgramExtendedPredictor(ExtendedHeuristicPredictor):
    """Extended predictor that resolves CFGs through a Program."""

    def __init__(self, program):
        from repro.prediction.error_functions import settings_for_program

        super().__init__(settings_for_program(program))
        self._program = program

    def predict_branch(
        self, function: str, block: BasicBlock, branch: CondBranch
    ) -> BranchPrediction:
        cfg = self._program.cfgs.get(function)
        if cfg is None:
            return super().predict_branch(function, block, branch)
        return self.predict_branch_in_cfg(cfg, block, branch)
