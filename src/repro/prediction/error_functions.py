"""Transitive detection of error (noreturn) functions.

The paper's heuristic is "errors (calling abort or exit) are unlikely",
but real programs wrap ``exit`` in helpers (``fatal``, ``die``,
``usage``).  A branch guarding ``fatal(...)`` is exactly as cold as one
guarding ``exit(...)``, so we close the error set transitively: a
function is an error function when some *unconditionally executed*
statement of its body calls a known error function — i.e. the function
cannot return normally.  Only top-level statements of the body compound
count; a conditional call to ``exit`` does not make a function noreturn.
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.frontend.builtins_list import ERROR_FUNCTIONS


def _statement_always_calls(
    statement: ast.Statement, error_set: frozenset[str]
) -> bool:
    """Does executing ``statement`` unconditionally reach an error call?"""
    if isinstance(statement, ast.ExpressionStatement):
        expression = statement.expression
        return (
            isinstance(expression, ast.Call)
            and expression.direct_name is not None
            and expression.direct_name in error_set
        )
    if isinstance(statement, ast.Compound):
        return any(
            _statement_always_calls(item, error_set)
            for item in statement.items
        )
    return False


def compute_error_functions(
    unit: ast.TranslationUnit,
    seed: frozenset[str] = ERROR_FUNCTIONS,
) -> frozenset[str]:
    """The transitive closure of noreturn error functions in ``unit``.

    Starts from the builtin seed (``abort``, ``exit``, assert failure)
    and adds user functions whose body unconditionally calls a member,
    iterating until no new wrappers appear (wrappers of wrappers).
    """
    error_set = set(seed)
    changed = True
    while changed:
        changed = False
        for function in unit.functions:
            if function.name in error_set:
                continue
            if any(
                _statement_always_calls(item, frozenset(error_set))
                for item in function.body.items
            ):
                error_set.add(function.name)
                changed = True
    return frozenset(error_set)


def settings_for_program(program, **overrides):
    """A :class:`~repro.prediction.heuristics.HeuristicSettings` whose
    error set is the program's transitive closure.  Cached per program
    unless overrides are given."""
    from repro.prediction.heuristics import HeuristicSettings

    if not overrides:
        cached = getattr(program, "_default_heuristic_settings", None)
        if cached is not None:
            return cached
    settings = HeuristicSettings(
        error_functions=compute_error_functions(program.unit), **overrides
    )
    if not overrides:
        program._default_heuristic_settings = settings
    return settings
