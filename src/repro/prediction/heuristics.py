"""AST-level branch-prediction heuristics (paper §4.1).

The paper designed a "smart" predictor in the spirit of Ball & Larus's
branch-prediction idioms, but operating on the abstract syntax and C
type system instead of executable code.  The idioms implemented here,
in priority order (the first that fires wins):

1.  **Constant**: a statically-known condition is "predicted" with
    certainty (and excluded from miss-rate scoring, §2).
2.  **Loop**: the controlling test of a loop is taken; with the default
    trip-count guess of 5 the probability is 0.8 (Figure 6).
3.  **Pointer**: "pointers are unlikely to be NULL" — ``p``, ``p != 0``
    predicted true, ``p == 0`` predicted false; pointer equality is
    predicted false.
4.  **Error call**: "errors (calling abort or exit) are unlikely" — an
    arm that reaches ``abort``/``exit``/assert-failure (or a noreturn
    wrapper of one, see :mod:`repro.prediction.error_functions`) is not
    taken.  Outranks the opcode idiom: ``if (c != '=') fatal()`` must
    predict the error arm cold.
5.  **Opcode**: integer/float comparisons — equality is unlikely,
    ``< 0`` / ``<= 0`` unlikely, ``>= 0`` / ``> 0`` likely.
6.  **Multiple ANDs**: "multiple logical ANDs make a condition less
    likely" — a conjunction of two or more tests is predicted false.
7.  **Return**: an arm that immediately returns is less likely (loops
    keep running; early returns are exits).
8.  **Store**: "when one arm of a conditional construct writes to
    variables read elsewhere, that arm is more likely" — approximated
    by favouring the arm that performs assignments.

When no idiom fires the prediction is *uninformative*: direction
``taken`` with probability 0.5, so the ``smart`` estimator degrades to
the ``loop`` estimator on such branches, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend import ast_nodes as ast
from repro.frontend import ctypes as ct
from repro.frontend.builtins_list import ERROR_FUNCTIONS
from repro.frontend.constfold import fold_condition


@dataclass(frozen=True)
class BranchPrediction:
    """One branch prediction: direction, confidence, and provenance."""

    taken_probability: float
    reason: str
    is_constant: bool = False

    @property
    def predicted_taken(self) -> bool:
        return self.taken_probability >= 0.5

    def flipped(self) -> "BranchPrediction":
        return BranchPrediction(
            1.0 - self.taken_probability, self.reason, self.is_constant
        )


#: Default probability for the predicted arm of a binary branch
#: (paper §4.2 footnote: "We chose 0.8 ... the exact value chosen did
#: not have a significant effect").
DEFAULT_TAKEN_PROBABILITY = 0.8

#: Default loop trip-count guess (paper §4.1: "predicting that all
#: loops iterate five times").
DEFAULT_LOOP_ITERATIONS = 5


class HeuristicSettings:
    """Tunable knobs, exposed for the ablation benchmarks.

    ``error_functions`` is the set of noreturn error functions the
    error-call idiom recognizes; pass the program-specific transitive
    closure from
    :func:`repro.prediction.error_functions.compute_error_functions`
    so that user wrappers like ``fatal()`` count (see
    :func:`settings_for_program`).
    """

    def __init__(
        self,
        taken_probability: float = DEFAULT_TAKEN_PROBABILITY,
        loop_iterations: int = DEFAULT_LOOP_ITERATIONS,
        weight_switch_by_labels: bool = True,
        error_functions: frozenset[str] = ERROR_FUNCTIONS,
    ):
        if not 0.5 <= taken_probability < 1.0:
            raise ValueError(
                "taken_probability must be in [0.5, 1.0)"
            )
        if loop_iterations < 1:
            raise ValueError("loop_iterations must be positive")
        self.taken_probability = taken_probability
        self.loop_iterations = loop_iterations
        self.weight_switch_by_labels = weight_switch_by_labels
        self.error_functions = error_functions

    @property
    def loop_taken_probability(self) -> float:
        """The loop test is true ``n-1`` of its ``n`` executions when a
        loop entered once iterates ``n-1`` times (test count ``n``)."""
        n = self.loop_iterations
        return (n - 1) / n if n > 1 else 0.5


def collect_predictions(
    condition: ast.Expression,
    kind: str = "if",
    origin: Optional[ast.Node] = None,
    settings: Optional[HeuristicSettings] = None,
) -> list[BranchPrediction]:
    """Every idiom that fires for this branch, in priority order.

    Used by :func:`predict_condition` (which keeps only the first) and
    by the evidence-combining calibrated predictor
    (:mod:`repro.prediction.calibrated`), which fuses all of them.
    """
    settings = settings or HeuristicSettings()
    p = settings.taken_probability
    fired: list[BranchPrediction] = []

    constant = fold_condition(condition)
    if constant is not None:
        return [
            BranchPrediction(
                1.0 if constant else 0.0, "constant", is_constant=True
            )
        ]

    if kind in ("loop", "do-loop"):
        fired.append(
            BranchPrediction(settings.loop_taken_probability, "loop")
        )

    pointer = _pointer_heuristic(condition, p)
    if pointer is not None:
        fired.append(pointer)

    # The error heuristic outranks the opcode heuristic: "this branch
    # guards an abort" is a stronger signal than the shape of the
    # comparison (e.g. `if (c != '=') syntax_error()` must predict the
    # error arm cold even though `!=` alone would predict taken).
    arms = _conditional_arms(origin)
    if arms is not None:
        then_branch, else_branch = arms
        error = _error_heuristic(
            then_branch, else_branch, p, settings.error_functions
        )
        if error is not None:
            fired.append(error)

    opcode = _opcode_heuristic(condition, p)
    if opcode is not None:
        fired.append(opcode)

    if _count_top_level_ands(condition) >= 2:
        fired.append(BranchPrediction(1.0 - p, "multiple-ands"))

    if arms is not None:
        then_branch, else_branch = arms
        returning = _return_heuristic(then_branch, else_branch, p)
        if returning is not None:
            fired.append(returning)
        store = _store_heuristic(then_branch, else_branch, p)
        if store is not None:
            fired.append(store)

    return fired


def predict_condition(
    condition: ast.Expression,
    kind: str = "if",
    origin: Optional[ast.Node] = None,
    settings: Optional[HeuristicSettings] = None,
) -> BranchPrediction:
    """Predict the direction of a branch on ``condition``.

    ``kind`` is the CFG branch kind (``if``, ``loop``, ``do-loop``,
    ``logical-and``, ``logical-or``, ``ternary``); ``origin`` is the AST
    construct the branch came from, used by arm-inspecting heuristics.
    The highest-priority firing idiom wins; with none, the prediction is
    the uninformative 0.5.
    """
    fired = collect_predictions(condition, kind, origin, settings)
    if fired:
        return fired[0]
    return BranchPrediction(0.5, "default")


# ----------------------------------------------------------------------
# Individual idioms.


def _is_null_constant(expression: ast.Expression) -> bool:
    """NULL spellings: 0, (void*)0, (char*)0, ..."""
    if isinstance(expression, ast.IntLiteral) and expression.value == 0:
        return True
    if isinstance(expression, ast.Cast):
        return _is_null_constant(expression.operand)
    return False


def _is_pointerish(expression: ast.Expression) -> bool:
    ctype = expression.ctype
    return ctype is not None and ctype.is_pointerish


def _pointer_heuristic(
    condition: ast.Expression, p: float
) -> Optional[BranchPrediction]:
    # Bare pointer (or negated pointer) used as a condition.
    if _is_pointerish(condition):
        return BranchPrediction(p, "pointer")
    if isinstance(condition, ast.BinaryOp) and condition.op in ("==", "!="):
        left, right = condition.left, condition.right
        left_pointer = _is_pointerish(left)
        right_pointer = _is_pointerish(right)
        null_comparison = (left_pointer and _is_null_constant(right)) or (
            right_pointer and _is_null_constant(left)
        )
        if null_comparison or (left_pointer and right_pointer):
            taken = condition.op == "!="
            return BranchPrediction(
                p if taken else 1.0 - p, "pointer"
            )
    return None


def _is_zero_constant(expression: ast.Expression) -> bool:
    if isinstance(expression, ast.IntLiteral):
        return expression.value == 0
    if isinstance(expression, ast.FloatLiteral):
        return expression.value == 0.0
    return False


def _opcode_heuristic(
    condition: ast.Expression, p: float
) -> Optional[BranchPrediction]:
    if not isinstance(condition, ast.BinaryOp):
        return None
    op = condition.op
    if op in ("==", "!="):
        # Equality rarely holds (Ball & Larus's opcode heuristic).
        taken = op == "!="
        return BranchPrediction(p if taken else 1.0 - p, "opcode-eq")
    zero_right = _is_zero_constant(condition.right)
    zero_left = _is_zero_constant(condition.left)
    if op in ("<", "<=") and zero_right:
        return BranchPrediction(1.0 - p, "opcode-neg")  # x < 0: unlikely
    if op in (">", ">=") and zero_right:
        return BranchPrediction(p, "opcode-neg")  # x > 0: likely
    if op in (">", ">=") and zero_left:
        return BranchPrediction(1.0 - p, "opcode-neg")  # 0 > x: unlikely
    if op in ("<", "<=") and zero_left:
        return BranchPrediction(p, "opcode-neg")  # 0 < x: likely
    return None


def _conditional_arms(
    origin: Optional[ast.Node],
) -> Optional[tuple[Optional[ast.Node], Optional[ast.Node]]]:
    """The (then, else) arms when origin is a two-armed construct."""
    if isinstance(origin, ast.If):
        return origin.then_branch, origin.else_branch
    if isinstance(origin, ast.Conditional):
        return origin.then_expr, origin.else_expr
    return None


def _calls_error_function(
    node: Optional[ast.Node], error_functions: frozenset[str]
) -> bool:
    if node is None:
        return False
    for child in node.walk():
        if (
            isinstance(child, ast.Call)
            and child.direct_name in error_functions
        ):
            return True
    return False


def _error_heuristic(
    then_branch: Optional[ast.Node],
    else_branch: Optional[ast.Node],
    p: float,
    error_functions: frozenset[str] = ERROR_FUNCTIONS,
) -> Optional[BranchPrediction]:
    then_errors = _calls_error_function(then_branch, error_functions)
    else_errors = _calls_error_function(else_branch, error_functions)
    if then_errors and not else_errors:
        return BranchPrediction(1.0 - p, "error-call")
    if else_errors and not then_errors:
        return BranchPrediction(p, "error-call")
    return None


def _count_top_level_ands(condition: ast.Expression) -> int:
    """Number of ``&&`` operators along the spine of the condition."""
    if isinstance(condition, ast.LogicalOp) and condition.op == "&&":
        return (
            1
            + _count_top_level_ands(condition.left)
            + _count_top_level_ands(condition.right)
        )
    return 0


def _immediately_returns(node: Optional[ast.Node]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Return):
        return True
    if isinstance(node, ast.Compound) and node.items:
        return isinstance(node.items[0], ast.Return)
    return False


def _return_heuristic(
    then_branch: Optional[ast.Node],
    else_branch: Optional[ast.Node],
    p: float,
) -> Optional[BranchPrediction]:
    then_returns = _immediately_returns(then_branch)
    else_returns = _immediately_returns(else_branch)
    if then_returns and not else_returns:
        return BranchPrediction(1.0 - p, "return")
    if else_returns and not then_returns:
        return BranchPrediction(p, "return")
    return None


def _stores(node: Optional[ast.Node]) -> int:
    if node is None:
        return 0
    count = 0
    for child in node.walk():
        if isinstance(child, (ast.Assignment, ast.IncDec)):
            count += 1
    return count


def _store_heuristic(
    then_branch: Optional[ast.Node],
    else_branch: Optional[ast.Node],
    p: float,
) -> Optional[BranchPrediction]:
    then_stores = _stores(then_branch)
    else_stores = _stores(else_branch)
    if then_stores and not else_stores:
        return BranchPrediction(p, "store")
    if else_stores and not then_stores:
        return BranchPrediction(1.0 - p, "store")
    return None
