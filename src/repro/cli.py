"""Command-line interface.

Usage (after installing the package)::

    python -m repro list                    # available experiments
    python -m repro run table2              # one table/figure
    python -m repro run all --jobs 4        # everything, parallel profiling
    python -m repro suite                   # run every suite program
    python -m repro exec compress --input 1 # run one program, show stdout
    python -m repro cfg compress table_lookup --dot  # dump a CFG
    python -m repro predict compress        # per-branch predictions
    python -m repro explain compress --top 5  # worst-branch attribution
    python -m repro explain base --record --dot heatmaps/  # full study
    python -m repro profile-suite --timings # collect/warm all profiles
    python -m repro profile-suite --tier xl --record  # suite XL, ledgered
    python -m repro run all --backend interp   # reference interpreter
    python -m repro cache info              # caches + fuzz corpus
    python -m repro cache clear
    python -m repro fuzz run --seed 0 --count 100 --jobs 4
    python -m repro fuzz replay <case>      # re-check one saved case
    python -m repro fuzz shrink <case>      # delta-debug a failing case
    python -m repro run all --trace         # record a span trace
    python -m repro trace                   # render the recorded trace
    python -m repro stats --format prom     # metrics from the last run
    python -m repro profile -- run all      # flamegraph of a command
    python -m repro run all --profile       # same, as a rider flag
    python -m repro serve --port 8787       # HTTP analysis daemon
    python -m repro serve --access-log logs/  # + JSON access log
    python -m repro traces --slow           # daemon flight recorder
    python -m repro history --limit 10      # past runs from the ledger
    python -m repro history show latest     # one run in full detail
    python -m repro compare latest~1 latest # score/stage drift check
    python -m repro compare latest --baseline baselines/scores.json \\
        --fail-on-regression                # the CI regression gate
    python -m repro report --html out.html  # self-contained dashboard

Profiling is cached persistently (see ``repro.profiles.cache``) and can
fan out over worker processes; ``--jobs``/``REPRO_JOBS`` control the
worker count and ``REPRO_CACHE_DIR``/``REPRO_CACHE`` the cache.

Execution defaults to the compiled backend (:mod:`repro.compile`);
``--backend interp`` / ``REPRO_BACKEND=interp`` select the reference
interpreter, and the two produce byte-identical profiles (enforced by
the ``compiled_vs_interpreter`` fuzz oracle).  Generated code persists
in the codegen cache (``REPRO_CODEGEN_CACHE_DIR``/
``REPRO_CODEGEN_CACHE``), covered by ``repro cache info|clear``.

Observability (see :mod:`repro.obs`): ``--trace``/``REPRO_TRACE``
record a span trace and write it as JSONL (``REPRO_TRACE_FILE``,
default ``repro-trace.jsonl``); metrics are always on and persisted at
the end of each command for ``repro stats``; ``--quiet``/``REPRO_QUIET``
silence diagnostic stderr chatter without touching stdout.  ``repro
profile -- <command>`` (or ``--profile`` on ``run``/``serve``/
``profile-suite``) samples the process with the zero-dependency
wall-clock profiler (:mod:`repro.obs.profiler`) and writes a
flamegraph SVG plus collapsed stacks (``REPRO_PROFILE_FILE``, default
``repro-profile.svg``).

Every ``run``/``run all``/``fuzz run`` invocation (and the benchmark
harness) appends one run to the persistent ledger
(:mod:`repro.obs.ledger`; ``REPRO_LEDGER=0`` disables,
``REPRO_LEDGER_DIR`` relocates); ``repro history``, ``repro compare``,
and ``repro report`` read it back.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import time

from repro import obs
from repro.analysis import cache as analysis_cache
from repro.attribution import cache as attribution_cache
from repro.analysis.session import session_for_suite
from repro.cfg import cfg_to_dot
from repro.compile import BACKENDS
from repro.compile import cache as codegen_cache
from repro.frontend.errors import FrontendError
from repro.fuzz import corpus as fuzz_corpus
from repro.experiments import (
    EXPERIMENTS,
    RunAllTimings,
    run_all,
    run_one,
)
from repro.obs import ledger
from repro.profiles import cache as profile_cache
from repro.suite import (
    SUITE,
    SUITE_BY_NAME,
    SuiteTimings,
    collect_suite_profiles,
    is_known_program,
    known_program_names,
    load_program,
    program_inputs,
    program_names,
    resolve_jobs,
    run_on_input,
)


def _error(message: str) -> None:
    """Print one error line to stderr (never silenced by --quiet)."""
    print(message, file=sys.stderr)


def _command_list(_: argparse.Namespace) -> int:
    for name, experiment in EXPERIMENTS.items():
        print(f"{name:12} {experiment.description}")
    return 0


def _resolve_jobs_or_fail(jobs: int | None) -> int:
    """Resolve the worker count, turning a bad REPRO_JOBS value into a
    clean CLI error instead of a traceback."""
    try:
        return resolve_jobs(jobs)
    except ValueError as error:
        raise SystemExit(f"repro: {error}") from None


def _apply_backend(args: argparse.Namespace) -> None:
    """Publish ``--backend`` through ``REPRO_BACKEND`` so every
    execution in this command — including pipeline worker processes,
    which inherit the environment — uses the selected backend.  A bad
    ambient ``REPRO_BACKEND`` becomes a clean CLI error here, before
    any work starts, instead of a traceback mid-run."""
    from repro.compile import resolve_backend

    choice = getattr(args, "backend", None)
    try:
        resolved = resolve_backend(choice)
    except ValueError as error:
        raise SystemExit(f"repro: {error}") from None
    if choice or "REPRO_BACKEND" in os.environ:
        os.environ["REPRO_BACKEND"] = resolved


def _command_run(args: argparse.Namespace) -> int:
    _apply_backend(args)
    started_at = ledger.now_iso()
    if args.experiment == "all":
        timings = RunAllTimings() if args.timings else None
        print(
            run_all(
                jobs=_resolve_jobs_or_fail(args.jobs),
                timings=timings,
                record=True,
                started_at=started_at,
            )
        )
        if timings is not None:
            # stderr (via diag), so stdout stays byte-identical with and
            # without the flag (and across serial vs parallel runs).
            obs.diag(timings.render())
        return 0
    if args.timings:
        _error("repro: --timings only applies to 'run all'")
        return 2
    try:
        print(
            run_one(args.experiment, record=True, started_at=started_at)
        )
    except KeyError as error:
        _error(str(error))
        return 2
    return 0


def _command_suite(args: argparse.Namespace) -> int:
    _apply_backend(args)
    for entry in SUITE:
        for index, stdin in enumerate(program_inputs(entry.name), start=1):
            result = run_on_input(entry.name, stdin, f"input{index}")
            status = "ok" if result.status == 0 else f"exit {result.status}"
            print(
                f"{entry.name}.{index}: {status}, "
                f"{result.blocks_executed} blocks"
            )
    return 0


def _command_exec(args: argparse.Namespace) -> int:
    _apply_backend(args)
    if not is_known_program(args.program):
        _error(f"repro: unknown suite program {args.program!r}")
        return 2
    inputs = program_inputs(args.program)
    index = args.input
    if not 1 <= index <= len(inputs):
        _error(f"{args.program} has inputs 1..{len(inputs)}")
        return 2
    result = run_on_input(args.program, inputs[index - 1], f"input{index}")
    sys.stdout.write(result.stdout)
    return result.status


def _command_cfg(args: argparse.Namespace) -> int:
    program = load_program(args.program)
    if args.function not in program.cfgs:
        _error(
            f"no function {args.function!r}; choices: "
            f"{program.function_names}"
        )
        return 2
    cfg = program.cfg(args.function)
    if args.dot:
        print(cfg_to_dot(cfg))
        return 0
    for block in sorted(cfg, key=lambda b: b.block_id):
        successors = ", ".join(str(s) for s in block.successor_ids())
        print(
            f"B{block.block_id} [{block.label}] "
            f"{len(block.statements)} stmts -> {successors or 'exit'}"
        )
    return 0


def _command_layout(args: argparse.Namespace) -> int:
    from repro.optimize import layout_from_estimates

    program = load_program(args.program)
    if args.function not in program.cfgs:
        _error(
            f"no function {args.function!r}; choices: "
            f"{program.function_names}"
        )
        return 2
    cfg = program.cfg(args.function)
    layout = layout_from_estimates(program, args.function)
    labels = {block.block_id: block.label for block in cfg}
    print(f"estimate-driven layout of {args.function}:")
    for position, block_id in enumerate(layout):
        print(f"  {position:3}  B{block_id:<3} {labels[block_id]}")
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    # The serving report module owns the prediction line format, so
    # `repro predict` and the daemon's /v1/analyze predictions.lines
    # are byte-identical by construction.
    from repro.serve.report import prediction_lines

    session = session_for_suite(args.program)
    for line in prediction_lines(session):
        print(line)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        batch_window_ms=args.batch_window_ms,
        request_timeout_s=args.timeout,
        record=args.record,
        access_log_dir=args.access_log,
    )
    return serve_forever(config)


def _render_trace_record(record: dict) -> str:
    """One summary line per flight-recorder record."""

    def col(value: object, default: str = "-") -> str:
        return default if value is None else str(value)

    queue = record.get("queue_wait_ms")
    queue_text = "-" if queue is None else f"{queue:.3f}ms"
    return (
        f"{col(record.get('trace_id'))[:16]:16} "
        f"{col(record.get('status')):>4} "
        f"{float(record.get('elapsed_ms') or 0.0):9.3f}ms "
        f"cache={col(record.get('cache')):4} "
        f"queue={queue_text:>9} "
        f"batch={col(record.get('batch_size')):>2} "
        f"shard={col(record.get('pool_shard')):>2} "
        f"{col(record.get('tenant'), 'anon')} "
        f"{col(record.get('name') or record.get('path'))}"
        + (" [coalesced]" if record.get("coalesced") else "")
        + (" [timeout]" if record.get("timeout") else "")
    )


def _command_traces(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.host, args.port, timeout=30)
    try:
        if args.slow:
            response = client.slow(limit=args.limit)
        else:
            response = client.traces(
                limit=args.limit,
                kind="errors" if args.errors else None,
            )
    except OSError as error:
        _error(
            f"repro: cannot reach daemon at {args.host}:{args.port}: "
            f"{error}"
        )
        return 2
    if response.status != 200 or response.payload is None:
        _error(f"repro: daemon answered {response.status}")
        return 2
    if args.json:
        print(json.dumps(response.payload, indent=2, sort_keys=True))
        return 0
    records = response.payload.get("traces", [])
    stats = response.payload.get("stats", {})
    if not records:
        print("(no traces retained)")
    for record in records:
        print(_render_trace_record(record))
        if args.full and record.get("spans"):
            roots = [
                obs.Span.from_dict(span_dict)
                for span_dict in record["spans"]
            ]
            tree = obs.render_span_tree(roots, full=True)
            for line in tree.splitlines():
                print(f"    {line}")
    print(
        f"flight recorder: {stats.get('recorded', 0)} recorded, "
        f"{stats.get('errors', 0)} errors retained, "
        f"slowest {stats.get('slowest_ms', 0)}ms"
    )
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    from repro.obs.profiler import SamplingProfiler, write_profile

    rest = list(args.argv)
    while rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        _error(
            "repro: profile needs a command to run, e.g. "
            "'repro profile -- run figure2'"
        )
        return 2
    if rest[0] == "profile":
        _error("repro: cannot nest 'repro profile'")
        return 2
    profiler = SamplingProfiler(
        interval_ms=args.interval_ms,
        include_idle=args.include_idle,
    )
    profiler.start()
    try:
        status = main(rest)
    finally:
        profiler.stop()
        svg_path, collapsed_path = write_profile(
            profiler, args.out, title="repro " + " ".join(rest)
        )
        obs.diag(
            f"repro: profile captured {profiler.total_samples} "
            f"samples -> {svg_path} (collapsed: {collapsed_path})"
        )
    return status


def _command_profile_suite(args: argparse.Namespace) -> int:
    _apply_backend(args)
    started_at = ledger.now_iso()
    if args.programs:
        names = args.programs
    else:
        try:
            names = known_program_names(args.tier)
        except ValueError as error:
            _error(f"repro: {error}")
            return 2
    unknown = [n for n in names if not is_known_program(n)]
    if unknown:
        _error(f"unknown suite programs: {unknown}")
        return 2
    timings = SuiteTimings()
    profiles = collect_suite_profiles(
        names,
        jobs=_resolve_jobs_or_fail(args.jobs),
        use_cache=False if args.no_cache else None,
        timings=timings,
    )
    if args.record:
        # One metric per program — total block executions across its
        # inputs.  The totals are deterministic (and identical across
        # backends and worker counts), so a committed baseline plus
        # ``repro compare --fail-on-regression`` pins both tiers.
        scores: dict[str, dict[str, float]] = {}
        for name, program_profiles in profiles.items():
            experiment = (
                "suite" if name in SUITE_BY_NAME else "suite_xl"
            )
            scores.setdefault(experiment, {})[f"{name}.blocks"] = float(
                sum(
                    p.total_block_executions for p in program_profiles
                )
            )
        label = (
            f"programs={len(names)}"
            if args.programs
            else f"tier={args.tier}"
        )
        ledger.record_run(
            "suite",
            label=label,
            started_at=started_at,
            jobs=timings.jobs,
            scores=scores,
            stages={"suite.collect": timings.total_seconds},
        )
    if args.timings:
        print(timings.render())
    else:
        print(
            f"collected {sum(len(program_inputs(n)) for n in names)} "
            f"profiles for {len(names)} programs "
            f"({timings.cache_hits} cached, {timings.cache_misses} "
            f"interpreted) in {timings.total_seconds:.2f}s"
        )
    return 0


#: ``repro explain`` target aliases: tier names plus the study alias
#: (``branch_prediction`` = the 14-program base tier the paper's
#: branch-prediction tables run over).
_EXPLAIN_ALIASES = ("base", "xl", "all", "branch_prediction")


def _resolve_explain_targets(targets: list[str]) -> list[str]:
    """Expand ``repro explain`` targets (program names, tier aliases,
    or ``branch_prediction``) into a program list, preserving order
    and dropping duplicates."""
    names: list[str] = []
    for target in targets or ["base"]:
        if target in _EXPLAIN_ALIASES:
            tier = "base" if target == "branch_prediction" else target
            expanded = known_program_names(tier)
        elif is_known_program(target):
            expanded = [target]
        else:
            raise ValueError(
                f"unknown program or tier {target!r} "
                f"(programs: {', '.join(program_names())}; "
                f"aliases: {', '.join(_EXPLAIN_ALIASES)})"
            )
        for name in expanded:
            if name not in names:
                names.append(name)
    return names


def _command_explain(args: argparse.Namespace) -> int:
    from repro.attribution import (
        accuracy_score_rows,
        explain_programs,
        explanations_to_dict,
        export_features,
        render_explanations,
        write_heatmaps,
    )
    from repro.obs import metrics_delta, metrics_snapshot

    _apply_backend(args)
    started_at = ledger.now_iso()
    metrics_before = metrics_snapshot()
    clock = time.perf_counter()
    try:
        names = _resolve_explain_targets(args.targets)
    except ValueError as error:
        _error(f"repro: {error}")
        return 2
    try:
        explanations = explain_programs(
            names,
            estimator=args.estimator,
            jobs=_resolve_jobs_or_fail(args.jobs),
            use_cache=False if args.no_cache else None,
        )
    except KeyError as error:
        _error(f"repro: {error.args[0]}")
        return 2

    if args.dot:
        written: list[str] = []
        for explanation in explanations:
            written.extend(
                write_heatmaps(
                    explanation, args.dot, function=args.function
                )
            )
        obs.diag(
            f"repro: wrote {len(written)} heatmap DOT files to {args.dot}"
        )
    if args.export_features:
        rows = export_features(explanations, args.export_features)
        obs.diag(
            f"repro: exported {rows} branch feature rows "
            f"to {args.export_features}"
        )
    if args.record:
        scores: dict[str, float] = {}
        for explanation in explanations:
            scores.update(
                accuracy_score_rows(
                    explanation.program, explanation.records
                )
            )
        ledger.record_run(
            "explain",
            label=f"programs={len(names)}",
            started_at=started_at,
            jobs=_resolve_jobs_or_fail(args.jobs),
            scores={"attribution": scores},
            stages={"explain.total": time.perf_counter() - clock},
            counters=ledger.counter_values(
                metrics_delta(metrics_before)
            ),
        )
    if args.json:
        print(
            json.dumps(
                explanations_to_dict(explanations),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            render_explanations(
                explanations, top=args.top, function=args.function
            )
        )
    return 0


def _format_mtime(value: object) -> str:
    """Unix mtime -> local ``YYYY-MM-DD HH:MM:SS`` (or ``-`` if empty)."""
    if value is None:
        return "-"
    stamp = datetime.datetime.fromtimestamp(float(value))  # type: ignore[arg-type]
    return stamp.isoformat(sep=" ", timespec="seconds")


def _command_cache(args: argparse.Namespace) -> int:
    if args.action == "info":
        for title, info in (
            ("profile cache", profile_cache.cache_info()),
            ("analysis cache", analysis_cache.analysis_cache_info()),
            ("codegen cache", codegen_cache.codegen_cache_info()),
            (
                "attribution cache",
                attribution_cache.attribution_cache_info(),
            ),
            ("fuzz corpus", fuzz_corpus.corpus_info()),
        ):
            print(f"{title}:")
            print(f"  directory: {info['directory']}")
            print(f"  enabled:   {'yes' if info['enabled'] else 'no'}")
            print(f"  entries:   {info['entries']}")
            print(f"  size:      {info['bytes']} bytes")
            print(f"  oldest:    {_format_mtime(info['oldest_mtime'])}")
            print(f"  newest:    {_format_mtime(info['newest_mtime'])}")
        info = ledger.ledger_info()
        print("run ledger:")
        print(f"  directory: {info['directory']}")
        print(f"  enabled:   {'yes' if info['enabled'] else 'no'}")
        print(f"  runs:      {info['runs']}")
        print(f"  rows:      {info['score_rows']} score rows")
        print(f"  size:      {info['bytes']} bytes")
        print(f"  oldest:    {info['oldest_run'] or '-'}")
        print(f"  newest:    {info['newest_run'] or '-'}")
        from repro.obs.flight import access_log_info

        info = access_log_info()
        print("serve access log:")
        print(
            "  directory: "
            + (
                info["directory"]
                or "(unset: REPRO_ACCESS_LOG_DIR or "
                "'repro serve --access-log')"
            )
        )
        print(f"  enabled:   {'yes' if info['enabled'] else 'no'}")
        print(f"  files:     {info['files']}")
        print(f"  size:      {info['bytes']} bytes")
        return 0
    for title, info, clear in (
        ("profile cache", profile_cache.cache_info(), profile_cache.clear_cache),
        (
            "analysis cache",
            analysis_cache.analysis_cache_info(),
            analysis_cache.clear_analysis_cache,
        ),
        (
            "codegen cache",
            codegen_cache.codegen_cache_info(),
            codegen_cache.clear_codegen_cache,
        ),
        (
            "attribution cache",
            attribution_cache.attribution_cache_info(),
            attribution_cache.clear_attribution_cache,
        ),
        ("fuzz corpus", fuzz_corpus.corpus_info(), fuzz_corpus.clear_corpus),
    ):
        removed = clear()
        print(
            f"{title}: removed {removed} entries "
            f"({info['bytes']} bytes) from {info['directory']}"
        )
    info = ledger.ledger_info()
    removed = ledger.clear_ledger()
    print(
        f"run ledger: removed {removed} runs "
        f"({info['bytes']} bytes) from {info['directory']}"
    )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    path = args.file or obs.default_trace_path()
    try:
        roots = obs.read_trace_jsonl(path)
    except OSError as error:
        _error(f"repro: cannot read trace file: {error}")
        return 2
    except ValueError as error:
        _error(f"repro: malformed trace file {path}: {error}")
        return 2
    print(
        obs.render_span_tree(
            roots, full=args.full, min_seconds=args.min_ms / 1000.0
        )
    )
    return 0


def _ledger_stat_gauges() -> dict[str, dict]:
    """Ledger-derived counters for ``repro stats`` (size and row
    totals of the longitudinal store, not of one run)."""
    info = ledger.ledger_info()
    if not info["runs"] and not info["enabled"]:
        return {}
    return {
        "ledger.runs": {"type": "gauge", "value": info["runs"]},
        "ledger.score_rows": {
            "type": "gauge",
            "value": info["score_rows"],
        },
        "ledger.bytes": {"type": "gauge", "value": info["bytes"]},
    }


def _command_stats(args: argparse.Namespace) -> int:
    snapshot = obs.read_stats(args.file)
    if snapshot is None:
        _error(
            "repro: no recorded stats "
            "(run a command first, e.g. 'repro run all')"
        )
        return 2
    snapshot = dict(snapshot)
    snapshot.update(_ledger_stat_gauges())
    if args.format == "prom":
        sys.stdout.write(obs.render_prometheus(snapshot))
    else:
        print(obs.render_metrics(snapshot))
    return 0


#: The committed regression baseline (``repro compare --baseline``
#: default when present; also picked up by ``repro report``).
DEFAULT_BASELINE = os.path.join("baselines", "scores.json")


def _command_history(args: argparse.Namespace) -> int:
    if getattr(args, "history_command", None) == "show":
        return _history_show(args)
    runs = ledger.list_runs(limit=args.limit, experiment=args.experiment)
    if not runs:
        print("(no runs recorded)")
        return 0
    print(
        f"{'run':>4}  {'started':25}  {'kind':8} {'label':16} "
        f"{'jobs':>4}  {'git':10} {'exps':>4}"
    )
    for run in runs:
        print(
            f"{run.id:>4}  {run.started_at:25}  {run.kind:8} "
            f"{run.label:16} {run.jobs:>4}  {run.git_sha:10} "
            f"{run.experiments:>4}"
        )
    return 0


def _resolve_run_or_fail(reference: str) -> ledger.RunRow | None:
    """Resolve a run reference, or print the error and return None."""
    try:
        return ledger.resolve_run(reference)
    except KeyError as error:
        _error(f"repro: {error.args[0]}")
        return None


def _history_show(args: argparse.Namespace) -> int:
    run = _resolve_run_or_fail(args.run)
    if run is None:
        return 2
    detail = ledger.run_detail(run)
    if args.json:
        print(json.dumps(detail.to_dict(), indent=2, sort_keys=True))
        return 0
    row = detail.row
    print(f"run {row.id}: {row.kind} {row.label}".rstrip())
    print(f"  started:  {row.started_at}")
    print(f"  git:      {row.git_sha or '-'}")
    print(f"  version:  {row.version or '-'}")
    print(f"  python:   {row.python} on {row.platform}")
    print(
        f"  jobs:     {row.jobs}  "
        f"(cache {'on' if row.cache_enabled else 'off'})"
    )
    for experiment in sorted(detail.scores):
        print(f"  scores [{experiment}]:")
        for metric, value in sorted(detail.scores[experiment].items()):
            print(f"    {metric:40} {value:.6g}")
    if detail.stages:
        print("  stages:")
        for stage, seconds in sorted(detail.stages.items()):
            print(f"    {stage:40} {seconds:8.3f}s")
    if detail.counters:
        print("  counters:")
        for name, value in sorted(detail.counters.items()):
            print(f"    {name:40} {value:.6g}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    run_a = _resolve_run_or_fail(args.run_a)
    if run_a is None:
        return 2
    candidate = ledger.run_detail(run_a)
    if args.baseline is not None:
        if args.run_b is not None:
            _error(
                "repro: compare takes either a second run or "
                "--baseline, not both"
            )
            return 2
        try:
            base_scores = ledger.load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            _error(f"repro: cannot read baseline: {error}")
            return 2
        base_label = args.baseline
        base_stages: dict[str, float] = {}
    else:
        if args.run_b is None:
            _error(
                "repro: compare needs two run references or "
                "--baseline FILE"
            )
            return 2
        # The candidate is the *second* reference; the first is the
        # base being compared against (usually the older run).
        base_detail = candidate
        run_b = _resolve_run_or_fail(args.run_b)
        if run_b is None:
            return 2
        candidate = ledger.run_detail(run_b)
        base_scores = base_detail.scores
        base_label = f"run {base_detail.row.id}"
        base_stages = base_detail.stages
    comparison = ledger.compare_scores(
        base_scores,
        candidate.scores,
        score_tol=args.score_tol,
        time_tol=args.time_tol,
        base_stages=base_stages or None,
        candidate_stages=candidate.stages or None,
        base_label=base_label,
        candidate_label=f"run {candidate.row.id}",
    )
    print(comparison.render())
    if args.fail_on_regression and not comparison.ok:
        return 1
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.obs import report as obs_report

    runs = ledger.list_runs(limit=args.limit)
    if not runs:
        _error(
            "repro: no runs recorded "
            "(run 'repro run all' first to populate the ledger)"
        )
        return 2
    details = [ledger.run_detail(run) for run in reversed(runs)]
    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if baseline_path is not None:
        try:
            baseline = ledger.load_baseline(baseline_path)
        except (OSError, ValueError) as error:
            _error(f"repro: cannot read baseline: {error}")
            return 2
    html = obs_report.build_report(
        details, baseline=baseline, baseline_label=baseline_path or ""
    )
    with open(args.html, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(
        f"wrote report over {len(details)} runs "
        f"({len({e for d in details for e in d.scores})} experiments) "
        f"to {args.html}"
    )
    return 0


def _command_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz import fuzz_run

    if args.count < 1:
        _error("repro: --count must be at least 1")
        return 2
    _apply_backend(args)
    report = fuzz_run(
        seed=args.seed,
        count=args.count,
        jobs=_resolve_jobs_or_fail(args.jobs),
        record=True,
        started_at=ledger.now_iso(),
        backend=args.backend,
    )
    # Summary on stdout is identical whatever the worker count; the
    # environment-dependent bits (jobs, corpus location) go to stderr.
    print(report.render())
    obs.diag(
        f"repro: fuzz used {report.jobs} jobs; "
        f"corpus at {fuzz_corpus.corpus_dir()}"
    )
    return 0 if report.ok else 1


def _resolve_case_or_fail(reference: str) -> tuple[str, str]:
    try:
        return fuzz_corpus.resolve_case(reference)
    except KeyError as error:
        raise SystemExit(f"repro: {error.args[0]}") from None
    except OSError as error:
        raise SystemExit(f"repro: cannot read case: {error}") from None


def _command_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzz import check_program

    key, source = _resolve_case_or_fail(args.case)
    name = args.case if args.case.endswith(".c") else f"{key[:16]}.c"
    # raise_frontend: a corpus case that no longer compiles surfaces as
    # the standard one-line file:line:col diagnostic from main().
    report = check_program(source, name, raise_frontend=True)
    for oracle in report.oracles_run:
        verdict = "FAIL" if oracle in report.failing_oracles else "ok"
        print(f"{oracle:28} {verdict}")
    for failure in report.failures:
        print(f"FAIL {failure.oracle}: {failure.message}")
    print(
        f"replay {key[:16]}: "
        f"{len(report.failing_oracles)} failing oracles"
    )
    return 0 if report.ok else 1


def _command_fuzz_shrink(args: argparse.Namespace) -> int:
    from repro.fuzz import check_program, shrink_case
    from repro.fuzz.shrink import DEFAULT_MAX_CHECKS

    key, source = _resolve_case_or_fail(args.case)
    name = args.case if args.case.endswith(".c") else f"{key[:16]}.c"
    report = check_program(source, name, raise_frontend=True)
    if report.ok:
        _error(f"repro: case {key[:16]} passes all oracles; nothing to shrink")
        return 2
    obs.diag(
        f"repro: shrinking {key[:16]} anchored to "
        f"{', '.join(report.failing_oracles)}"
    )
    max_checks = (
        args.max_checks if args.max_checks is not None else DEFAULT_MAX_CHECKS
    )
    result = shrink_case(
        source, report.failing_oracles, max_checks=max_checks
    )
    path = fuzz_corpus.save_reduction(key, result.source)
    obs.diag(f"repro: reduction saved to {path}")
    print(
        f"shrunk {key[:16]}: {result.original_lines} -> "
        f"{result.reduced_lines} lines ({result.checks} checks)"
    )
    sys.stdout.write(result.source)
    return 0


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help=(
            "execution backend (default: REPRO_BACKEND or 'compiled'; "
            "'interp' is the reference interpreter)"
        ),
    )


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "sample this command with the wall-clock profiler and "
            "write a flamegraph SVG on exit (REPRO_PROFILE_FILE, "
            "default repro-profile.svg)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI parser (exposed for tests and docs)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Accurate Static Estimators for Program "
            "Optimization' (PLDI 1994)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list experiments"
    ).set_defaults(handler=_command_list)

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or 'all')"
    )
    run_parser.add_argument("experiment")
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for profiling and experiments "
            "(default: REPRO_JOBS or CPU count)"
        ),
    )
    run_parser.add_argument(
        "--timings",
        action="store_true",
        help=(
            "with 'all': print a per-stage timing report to stderr "
            "(profiling, per-experiment wall time, analysis stages)"
        ),
    )
    run_parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record a span trace and write it as JSONL "
            "(REPRO_TRACE_FILE, default repro-trace.jsonl)"
        ),
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress diagnostic stderr output (stdout is unchanged)",
    )
    _add_profile_argument(run_parser)
    _add_backend_argument(run_parser)
    run_parser.set_defaults(handler=_command_run)

    suite_parser = subparsers.add_parser(
        "suite", help="run every suite program on every input"
    )
    _add_backend_argument(suite_parser)
    suite_parser.set_defaults(handler=_command_suite)

    exec_parser = subparsers.add_parser(
        "exec", help="run one suite program and print its stdout"
    )
    exec_parser.add_argument("program")
    exec_parser.add_argument("--input", type=int, default=1)
    _add_backend_argument(exec_parser)
    exec_parser.set_defaults(handler=_command_exec)

    cfg_parser = subparsers.add_parser(
        "cfg", help="show a function's control-flow graph"
    )
    cfg_parser.add_argument("program")
    cfg_parser.add_argument("function")
    cfg_parser.add_argument("--dot", action="store_true")
    cfg_parser.set_defaults(handler=_command_cfg)

    predict_parser = subparsers.add_parser(
        "predict", help="show per-branch static predictions"
    )
    predict_parser.add_argument("program")
    predict_parser.set_defaults(handler=_command_predict)

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the HTTP analysis daemon "
            "(POST /v1/analyze, GET /healthz, GET /metrics)"
        ),
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8787,
        help="bind port; 0 picks a free port (default: 8787)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="analysis worker threads (default: 4)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=128,
        help=(
            "admitted analyze requests beyond which new ones get "
            "429 + Retry-After (default: 128)"
        ),
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help=(
            "micro-batch window; identical requests arriving within "
            "it share one computation (default: 2.0)"
        ),
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request analysis timeout in seconds (default: 30)",
    )
    serve_parser.add_argument(
        "--record",
        action="store_true",
        help="append one serving run to the ledger on shutdown",
    )
    serve_parser.add_argument(
        "--access-log",
        dest="access_log",
        default=None,
        metavar="DIR",
        help=(
            "directory for the rotated JSON access log (default: "
            "REPRO_ACCESS_LOG_DIR, else stderr only)"
        ),
    )
    serve_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress diagnostic stderr output (stdout is unchanged)",
    )
    _add_profile_argument(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    layout_parser = subparsers.add_parser(
        "layout",
        help="show an estimate-driven basic-block layout",
    )
    layout_parser.add_argument("program")
    layout_parser.add_argument("function")
    layout_parser.set_defaults(handler=_command_layout)

    explain_parser = subparsers.add_parser(
        "explain",
        help=(
            "attribute estimation error to branches: ranked worst "
            "branches, heuristic accuracy, CFG heatmaps"
        ),
    )
    explain_parser.add_argument(
        "targets",
        nargs="*",
        help=(
            "programs to explain, or an alias: base (default), xl, "
            "all, branch_prediction"
        ),
    )
    explain_parser.add_argument(
        "--function",
        default=None,
        help="restrict ranking (and heatmaps) to one function",
    )
    explain_parser.add_argument(
        "--estimator",
        default="markov",
        help=(
            "intra estimator whose error is attributed "
            "(markov, smart, loop; default: markov)"
        ),
    )
    explain_parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many worst branches to rank (default: 10)",
    )
    explain_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full explanation payload as JSON",
    )
    explain_parser.add_argument(
        "--dot",
        metavar="DIR",
        default=None,
        help=(
            "write one CFG heatmap DOT per function "
            "(<program>.<function>.dot) under this directory"
        ),
    )
    explain_parser.add_argument(
        "--export-features",
        metavar="OUT",
        default=None,
        help=(
            "write the per-branch feature/label matrix as JSONL "
            "(one object per branch, heuristics fired + ground truth)"
        ),
    )
    explain_parser.add_argument(
        "--record",
        action="store_true",
        help=(
            "append per-heuristic accuracy rows to the run ledger "
            "(the 'attribution' experiment, gated by "
            "baselines/attribution.json in CI)"
        ),
    )
    explain_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for profiling (default: REPRO_JOBS or CPU count)",
    )
    explain_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent attribution cache",
    )
    explain_parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record a span trace and write it as JSONL "
            "(REPRO_TRACE_FILE, default repro-trace.jsonl)"
        ),
    )
    explain_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress diagnostic stderr output (stdout is unchanged)",
    )
    _add_backend_argument(explain_parser)
    explain_parser.set_defaults(handler=_command_explain)

    profile_parser = subparsers.add_parser(
        "profile-suite",
        help="collect (and cache) profiles for suite programs",
    )
    profile_parser.add_argument(
        "programs",
        nargs="*",
        help="suite programs (default: the selected --tier)",
    )
    profile_parser.add_argument(
        "--tier",
        choices=("base", "xl", "all"),
        default="base",
        help=(
            "program set when none are named: the 14 paper programs "
            "(base), the generated suite-XL tier (xl), or both (all)"
        ),
    )
    profile_parser.add_argument(
        "--record",
        action="store_true",
        help=(
            "append per-program block totals to the run ledger "
            "(for 'repro compare --fail-on-regression' gating)"
        ),
    )
    profile_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or CPU count)",
    )
    profile_parser.add_argument(
        "--timings",
        action="store_true",
        help="print a per-program timing and cache-traffic table",
    )
    profile_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent profile cache",
    )
    profile_parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record a span trace and write it as JSONL "
            "(REPRO_TRACE_FILE, default repro-trace.jsonl)"
        ),
    )
    _add_profile_argument(profile_parser)
    _add_backend_argument(profile_parser)
    profile_parser.set_defaults(handler=_command_profile_suite)

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing of the estimator pipeline",
    )
    fuzz_sub = fuzz_parser.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run_parser = fuzz_sub.add_parser(
        "run",
        help="generate seeded programs and check every oracle",
    )
    fuzz_run_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; per-case seeds derive from (seed, index)",
    )
    fuzz_run_parser.add_argument(
        "--count",
        type=int,
        default=100,
        help="number of cases to generate and check (default: 100)",
    )
    fuzz_run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or CPU count)",
    )
    fuzz_run_parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record a span trace and write it as JSONL "
            "(REPRO_TRACE_FILE, default repro-trace.jsonl)"
        ),
    )
    fuzz_run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress diagnostic stderr output (stdout is unchanged)",
    )
    _add_backend_argument(fuzz_run_parser)
    fuzz_run_parser.set_defaults(handler=_command_fuzz_run)

    fuzz_replay_parser = fuzz_sub.add_parser(
        "replay",
        help="re-run every oracle on one saved (or external) case",
    )
    fuzz_replay_parser.add_argument(
        "case",
        help="corpus key, unique key prefix, or path to a .c file",
    )
    fuzz_replay_parser.set_defaults(handler=_command_fuzz_replay)

    fuzz_shrink_parser = fuzz_sub.add_parser(
        "shrink",
        help="delta-debug a failing case to a minimal reproducer",
    )
    fuzz_shrink_parser.add_argument(
        "case",
        help="corpus key, unique key prefix, or path to a .c file",
    )
    fuzz_shrink_parser.add_argument(
        "--max-checks",
        type=int,
        default=None,
        help="cap on oracle re-runs during reduction",
    )
    fuzz_shrink_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress diagnostic stderr output (stdout is unchanged)",
    )
    fuzz_shrink_parser.set_defaults(handler=_command_fuzz_shrink)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent caches"
    )
    cache_parser.add_argument("action", choices=("info", "clear"))
    cache_parser.set_defaults(handler=_command_cache)

    trace_parser = subparsers.add_parser(
        "trace", help="render a recorded span trace as a tree"
    )
    trace_parser.add_argument(
        "file",
        nargs="?",
        default=None,
        help="JSONL trace file (default: REPRO_TRACE_FILE or repro-trace.jsonl)",
    )
    trace_parser.add_argument(
        "--full",
        action="store_true",
        help="list every span individually with its attributes",
    )
    trace_parser.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        help="hide aggregated rows cheaper than this many milliseconds",
    )
    trace_parser.set_defaults(handler=_command_trace)

    history_parser = subparsers.add_parser(
        "history", help="list past runs from the persistent ledger"
    )
    history_parser.add_argument(
        "--limit",
        type=int,
        default=20,
        help="how many runs to list, newest first (default: 20)",
    )
    history_parser.add_argument(
        "--experiment",
        default=None,
        help="only runs holding scores for this experiment",
    )
    history_sub = history_parser.add_subparsers(
        dest="history_command", required=False
    )
    history_show_parser = history_sub.add_parser(
        "show", help="print one run in full detail"
    )
    history_show_parser.add_argument(
        "run",
        help="run id, 'latest', or 'latest~N'",
    )
    history_show_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the run as JSON (usable as a "
            "'repro compare --baseline' file)"
        ),
    )
    history_parser.set_defaults(handler=_command_history)

    compare_parser = subparsers.add_parser(
        "compare",
        help="diff two ledger runs (or a run against a baseline file)",
    )
    compare_parser.add_argument(
        "run_a",
        help=(
            "base run reference (or, with --baseline, the candidate "
            "run to check against the baseline)"
        ),
    )
    compare_parser.add_argument(
        "run_b",
        nargs="?",
        default=None,
        help="candidate run reference",
    )
    compare_parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "compare run_a against a committed scores file "
            f"(e.g. {DEFAULT_BASELINE})"
        ),
    )
    compare_parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any score drifts or any stage slows beyond "
        "tolerance",
    )
    compare_parser.add_argument(
        "--score-tol",
        type=float,
        default=1e-6,
        help=(
            "absolute score drift tolerance, either direction "
            "(default: 1e-6)"
        ),
    )
    compare_parser.add_argument(
        "--time-tol",
        type=float,
        default=0.25,
        help=(
            "relative stage slowdown tolerance, e.g. 0.25 = 25%% "
            "(default: 0.25)"
        ),
    )
    compare_parser.set_defaults(handler=_command_compare)

    report_parser = subparsers.add_parser(
        "report",
        help="write a self-contained HTML dashboard over the ledger",
    )
    report_parser.add_argument(
        "--html",
        default="repro-report.html",
        metavar="OUT",
        help="output path (default: repro-report.html)",
    )
    report_parser.add_argument(
        "--limit",
        type=int,
        default=50,
        help="how many runs of history to chart (default: 50)",
    )
    report_parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "scores file for the delta column (default: "
            f"{DEFAULT_BASELINE} when present)"
        ),
    )
    report_parser.set_defaults(handler=_command_report)

    stats_parser = subparsers.add_parser(
        "stats", help="show metrics recorded by the last command"
    )
    stats_parser.add_argument(
        "--format",
        choices=("table", "prom"),
        default="table",
        help="output format (default: table)",
    )
    stats_parser.add_argument(
        "--file",
        default=None,
        help="stats snapshot file (default: REPRO_STATS_FILE or the "
        "profile cache directory)",
    )
    stats_parser.set_defaults(handler=_command_stats)

    traces_parser = subparsers.add_parser(
        "traces",
        help=(
            "fetch request traces from a running daemon's flight "
            "recorder (GET /debug/traces | /debug/slow)"
        ),
    )
    traces_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="daemon address (default: 127.0.0.1)",
    )
    traces_parser.add_argument(
        "--port",
        type=int,
        default=8787,
        help="daemon port (default: 8787)",
    )
    traces_parser.add_argument(
        "--slow",
        action="store_true",
        help="slowest retained requests instead of most recent",
    )
    traces_parser.add_argument(
        "--errors",
        action="store_true",
        help="retained error/timeout traces instead of most recent",
    )
    traces_parser.add_argument(
        "--limit",
        type=int,
        default=10,
        help="traces to fetch (default: 10)",
    )
    traces_parser.add_argument(
        "--full",
        action="store_true",
        help="render each trace's full span tree",
    )
    traces_parser.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON payload",
    )
    traces_parser.set_defaults(handler=_command_traces)

    profiler_parser = subparsers.add_parser(
        "profile",
        help=(
            "run another repro command under the sampling profiler "
            "and write a flamegraph SVG"
        ),
    )
    profiler_parser.add_argument(
        "--out",
        default=None,
        metavar="SVG",
        help=(
            "flamegraph output path (default: REPRO_PROFILE_FILE or "
            "repro-profile.svg; collapsed stacks land next to it)"
        ),
    )
    profiler_parser.add_argument(
        "--interval-ms",
        dest="interval_ms",
        type=float,
        default=5.0,
        help="sampling interval in milliseconds (default: 5)",
    )
    profiler_parser.add_argument(
        "--include-idle",
        action="store_true",
        help=(
            "keep stacks parked in locks/selectors/executor queues "
            "(dropped by default)"
        ),
    )
    profiler_parser.add_argument(
        "argv",
        nargs=argparse.REMAINDER,
        metavar="-- command",
        help="the repro command to profile, e.g. '-- run all'",
    )
    profiler_parser.set_defaults(handler=_command_profile)

    return parser


def _finish_observability() -> None:
    """End-of-command export: flush the trace, persist the metrics.

    The trace is written only when tracing is on (``--trace`` or
    ``REPRO_TRACE``); the metrics snapshot is persisted whenever the
    command produced any, so a later ``repro stats`` can read it back.
    """
    if obs.tracing_enabled() and obs.trace_roots():
        path, count = obs.write_trace_jsonl()
        obs.diag(f"repro: wrote {count} spans to {path}")
    if obs.metrics_snapshot() and (
        profile_cache.cache_enabled() or os.environ.get("REPRO_STATS_FILE")
    ):
        obs.write_stats()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    was_tracing = obs.tracing_enabled()
    was_quiet = obs.quiet_enabled()
    was_backend = os.environ.get("REPRO_BACKEND")
    if getattr(args, "quiet", False):
        obs.set_quiet(True)
    if getattr(args, "trace", False) is True:
        obs.enable_tracing()
    profiler = None
    if getattr(args, "profile", False) is True:
        from repro.obs.profiler import SamplingProfiler

        profiler = SamplingProfiler()
        profiler.start()
    try:
        status = args.handler(args)
        _finish_observability()
    except FrontendError as error:
        # Rejected source is a user-facing diagnostic, not a crash:
        # one `file:line:col: message` line on stderr, nonzero exit.
        _error(error.diagnostic())
        return 1
    except BrokenPipeError:  # e.g. `repro trace | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if profiler is not None:
            profiler.stop()
            from repro.obs.profiler import write_profile

            svg_path, collapsed_path = write_profile(
                profiler,
                title=f"repro {getattr(args, 'command', '')}".strip(),
            )
            obs.diag(
                f"profile: {profiler.total_samples} samples over "
                f"{profiler.wall_seconds:.2f}s -> {svg_path} "
                f"(+ {collapsed_path})"
            )
        # Restore process-global flags so in-process callers (tests,
        # embedding) see main() as reentrant.  --backend publishes
        # through the environment (worker processes inherit it), so it
        # is restored the same way.
        obs.set_quiet(was_quiet)
        if not was_tracing:
            obs.disable_tracing()
        if was_backend is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = was_backend
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
