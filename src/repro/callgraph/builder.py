"""Call-graph construction from CFGs.

Walks every block's statements and terminator expressions to find
:class:`~repro.frontend.ast_nodes.Call` nodes, classifying each as a
direct call to a defined function, a builtin call, or an indirect call
through a pointer.  Also counts static address-of operations on function
names (explicit ``&f`` and implicit uses of ``f`` as a value), which
weight the pointer node's outgoing arcs.
"""

from __future__ import annotations

from typing import Iterator

from repro.callgraph.graph import CallGraph, CallSite
from repro.cfg.block import (
    BasicBlock,
    CondBranch,
    ControlFlowGraph,
    ReturnTerm,
    SwitchBranch,
)
from repro.frontend import ast_nodes as ast


def block_expressions(block: BasicBlock) -> Iterator[ast.Expression]:
    """Every top-level expression evaluated when ``block`` executes,
    including the terminator's condition or return value."""
    for statement in block.statements:
        if isinstance(statement, ast.ExpressionStatement):
            if statement.expression is not None:
                yield statement.expression
        elif isinstance(statement, ast.Declaration):
            if statement.initializer is not None:
                yield from _initializer_expressions(statement.initializer)
    terminator = block.terminator
    if isinstance(terminator, (CondBranch, SwitchBranch)):
        yield terminator.condition
    elif isinstance(terminator, ReturnTerm) and terminator.value is not None:
        yield terminator.value


def _initializer_expressions(
    initializer: ast.Initializer,
) -> Iterator[ast.Expression]:
    if initializer.expression is not None:
        yield initializer.expression
    if initializer.elements is not None:
        for element in initializer.elements:
            yield from _initializer_expressions(element)


def calls_in_block(block: BasicBlock) -> list[ast.Call]:
    """All Call nodes evaluated by ``block``, in AST order."""
    calls: list[ast.Call] = []
    for expression in block_expressions(block):
        for node in expression.walk():
            if isinstance(node, ast.Call):
                calls.append(node)
    return calls


def build_call_graph(
    unit: ast.TranslationUnit, cfgs: dict[str, ControlFlowGraph]
) -> CallGraph:
    """Build the call graph for a whole program."""
    defined = set(unit.function_names())
    graph = CallGraph(functions=list(unit.function_names()))

    for function in unit.functions:
        cfg = cfgs[function.name]
        sites: list[CallSite] = []
        for block in sorted(cfg, key=lambda b: b.block_id):
            for call in calls_in_block(block):
                sites.append(
                    _classify_call(function.name, call, block.block_id, defined)
                )
        graph.sites_by_caller[function.name] = sites

    graph.address_taken = _count_address_taken(unit, defined)
    return graph


def _classify_call(
    caller: str, call: ast.Call, block_id: int, defined: set[str]
) -> CallSite:
    callee = call.direct_name
    if callee is not None and callee in defined:
        return CallSite(caller, call, block_id, callee)
    if callee is not None:
        # Direct call to an undefined name: a builtin (or an external
        # the runtime will reject); either way it is not a call-graph
        # arc between user functions.
        return CallSite(caller, call, block_id, callee, is_builtin=True)
    # The callee expression may still be a function identifier behind
    # parentheses or a dereference: (*fp)(x) and (f)(x) are common.
    target = _peel_callee(call.callee)
    if isinstance(target, ast.Identifier) and target.binding == "function":
        if target.name in defined:
            return CallSite(caller, call, block_id, target.name)
        return CallSite(caller, call, block_id, target.name, is_builtin=True)
    return CallSite(caller, call, block_id, None)


def _peel_callee(expression: ast.Expression) -> ast.Expression:
    """Strip semantically transparent wrappers: ``(*fp)`` -> ``fp`` only
    when fp is literally a function designator; ``(f)`` -> ``f``."""
    while isinstance(expression, ast.Dereference):
        inner = expression.operand
        if (
            isinstance(inner, ast.Identifier)
            and inner.binding == "function"
        ):
            return inner
        break
    return expression


def _count_address_taken(
    unit: ast.TranslationUnit, defined: set[str]
) -> dict[str, int]:
    """Static address-of counts per defined function.

    A function name used anywhere other than as the callee of a direct
    call counts as one address-of (C implicitly decays the designator to
    a pointer); explicit ``&f`` counts once, not twice.
    """
    counts: dict[str, int] = {}
    callee_ids: set[int] = set()
    addressed_ids: set[int] = set()
    for node in unit.walk():
        if isinstance(node, ast.Call):
            target = _peel_callee(node.callee)
            if isinstance(target, ast.Identifier):
                callee_ids.add(target.node_id)
        elif isinstance(node, ast.AddressOf) and isinstance(
            node.operand, ast.Identifier
        ):
            addressed_ids.add(node.operand.node_id)
    for node in unit.walk():
        if (
            isinstance(node, ast.Identifier)
            and node.binding == "function"
            and node.name in defined
            and node.node_id not in callee_ids
        ):
            counts[node.name] = counts.get(node.name, 0) + 1
    return counts
