"""Call graphs: construction, the pointer node, SCCs."""

from repro.callgraph.builder import (
    block_expressions,
    build_call_graph,
    calls_in_block,
)
from repro.callgraph.graph import POINTER_NODE, CallGraph, CallSite
from repro.callgraph.scc import (
    recursive_functions,
    strongly_connected_components,
)

__all__ = [
    "POINTER_NODE",
    "CallGraph",
    "CallSite",
    "block_expressions",
    "build_call_graph",
    "calls_in_block",
    "recursive_functions",
    "strongly_connected_components",
]
