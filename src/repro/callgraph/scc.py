"""Tarjan's strongly-connected-components algorithm (iterative).

Used by the ``all_rec`` estimators (which scale every function involved
in recursion) and by the call-graph Markov model's recursion repair
(paper §5.2.2: failed solutions are re-solved per-SCC).
"""

from __future__ import annotations

from typing import Callable, Sequence


def strongly_connected_components(
    nodes: Sequence[str], successors: Callable[[str], Sequence[str]]
) -> list[list[str]]:
    """SCCs in reverse topological order (callees before callers).

    ``successors`` may return nodes outside ``nodes``; they are ignored.
    """
    node_set = set(nodes)
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        # Iterative Tarjan: work items are (node, iterator position).
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = [
                child for child in successors(node) if child in node_set
            ]
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index_of:
                    work[-1] = (node, position + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def recursive_functions(
    nodes: Sequence[str], successors: Callable[[str], Sequence[str]]
) -> set[str]:
    """Functions involved in any recursion: members of a multi-node SCC,
    plus self-recursive single nodes."""
    result: set[str] = set()
    for component in strongly_connected_components(nodes, successors):
        if len(component) > 1:
            result.update(component)
        else:
            node = component[0]
            if node in successors(node):
                result.add(node)
    return result
