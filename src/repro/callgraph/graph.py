"""Call-graph data structures.

The call graph's nodes are function names plus one synthetic
:data:`POINTER_NODE` that stands for "whatever a call through a function
pointer reaches" (paper §5.2.1).  Every call through a pointer becomes
an arc into the pointer node; the pointer node has an arc out to every
address-taken function, weighted by how many *static* address-of
operations the program applies to that function's name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.frontend import ast_nodes as ast

#: Name of the synthetic node that models indirect calls.
POINTER_NODE = "<pointer>"


@dataclass(frozen=True)
class CallSite:
    """One syntactic call site inside a function body.

    ``callee`` is the target function's name for direct calls, ``None``
    for calls through pointers.  ``block_id`` locates the call in the
    caller's CFG so its frequency can be estimated or profiled.
    """

    caller: str
    call: ast.Call
    block_id: int
    callee: Optional[str]
    is_builtin: bool = False

    @property
    def is_indirect(self) -> bool:
        return self.callee is None and not self.is_builtin

    @property
    def site_id(self) -> int:
        """Stable identifier: the Call node's id."""
        return self.call.node_id

    def describe(self) -> str:
        target = self.callee or ("<builtin>" if self.is_builtin else "<indirect>")
        return (
            f"{self.caller} -> {target} at {self.call.location}"
        )


@dataclass
class CallGraph:
    """Functions, call sites, and address-taken bookkeeping."""

    #: All defined function names, in definition order.
    functions: list[str] = field(default_factory=list)
    #: Call sites grouped by caller (builtin calls included).
    sites_by_caller: dict[str, list[CallSite]] = field(default_factory=dict)
    #: function name -> number of static address-of operations on it.
    address_taken: dict[str, int] = field(default_factory=dict)

    def call_sites(self, include_builtins: bool = False) -> list[CallSite]:
        """All call sites, in caller-definition order."""
        result: list[CallSite] = []
        for function in self.functions:
            for site in self.sites_by_caller.get(function, []):
                if site.is_builtin and not include_builtins:
                    continue
                result.append(site)
        return result

    def direct_callees(self, caller: str) -> list[str]:
        """Defined functions directly called from ``caller``."""
        return [
            site.callee
            for site in self.sites_by_caller.get(caller, [])
            if site.callee is not None and not site.is_builtin
        ]

    def successors(self, node: str) -> list[str]:
        """Call-graph successors; the pointer node fans out to every
        address-taken function."""
        if node == POINTER_NODE:
            return sorted(self.address_taken)
        result: list[str] = []
        for site in self.sites_by_caller.get(node, []):
            if site.is_builtin:
                continue
            result.append(site.callee if site.callee else POINTER_NODE)
        return result

    def nodes(self) -> list[str]:
        """All nodes: functions plus the pointer node when used."""
        names = list(self.functions)
        if self.uses_pointer_node():
            names.append(POINTER_NODE)
        return names

    def uses_pointer_node(self) -> bool:
        return bool(self.address_taken) and any(
            site.is_indirect for sites in self.sites_by_caller.values()
            for site in sites
        )

    def total_address_of(self) -> int:
        return sum(self.address_taken.values())
