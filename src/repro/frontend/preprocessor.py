"""A small C preprocessor.

Supports the directives the benchmark suite needs:

* ``#define`` for object-like and function-like macros (no ``#``/``##``
  operators), ``#undef``;
* ``#include "name"`` and ``#include <name>``, resolved against a list of
  include directories and a dict of virtual headers;
* ``#ifdef``, ``#ifndef``, ``#if``, ``#elif``, ``#else``, ``#endif`` with
  full constant-expression evaluation including ``defined(NAME)``;
* ``#error``;
* backslash line continuations.

Macro expansion respects string and character literals and comments, and
guards against self-recursive macros the standard way (a macro is not
re-expanded while it is being expanded).

The output is plain text suitable for :mod:`repro.frontend.lexer`.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from repro.frontend.errors import PreprocessorError, SourceLocation

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_MAX_EXPANSION_DEPTH = 64


@dataclass
class Macro:
    """One ``#define`` definition."""

    name: str
    body: str
    parameters: list[str] | None = None  # None means object-like.
    variadic: bool = False

    @property
    def is_function_like(self) -> bool:
        return self.parameters is not None


class Preprocessor:
    """Expands directives and macros over C source text."""

    def __init__(
        self,
        include_dirs: list[str] | None = None,
        virtual_headers: dict[str, str] | None = None,
        predefined: dict[str, str] | None = None,
    ):
        self._include_dirs = list(include_dirs or [])
        self._virtual_headers = dict(virtual_headers or {})
        self._macros: dict[str, Macro] = {}
        for name, body in (predefined or {}).items():
            self._macros[name] = Macro(name, body)
        self._include_stack: list[str] = []

    # ------------------------------------------------------------------
    # Public API.

    def define(self, name: str, body: str = "1") -> None:
        """Define an object-like macro programmatically."""
        self._macros[name] = Macro(name, body)

    def preprocess(self, text: str, filename: str = "<input>") -> str:
        """Return the preprocessed form of ``text``."""
        self._include_stack.append(filename)
        try:
            lines = self._process_lines(
                _splice_continuations(_strip_comments(text)), filename
            )
        finally:
            self._include_stack.pop()
        output = "\n".join(lines)
        if not output.endswith("\n"):
            output += "\n"  # Exactly one final newline: idempotent.
        return output

    # ------------------------------------------------------------------
    # Line-level processing.

    def _process_lines(self, lines: list[str], filename: str) -> list[str]:
        output: list[str] = []
        # Conditional stack entries: (currently_active, any_branch_taken,
        # parent_active).
        conditionals: list[tuple[bool, bool, bool]] = []
        for line_number, line in enumerate(lines, start=1):
            location = SourceLocation(filename, line_number, 1)
            stripped = line.lstrip()
            active = all(entry[0] for entry in conditionals)
            if stripped.startswith("#"):
                directive, _, rest = stripped[1:].lstrip().partition(" ")
                directive = directive.strip()
                rest = rest.strip()
                handled = self._process_directive(
                    directive, rest, location, conditionals, active, output
                )
                if handled:
                    continue
                if active:
                    raise PreprocessorError(
                        f"unknown directive #{directive}", location
                    )
                continue
            if active:
                output.append(self._expand_line(line, location))
            else:
                output.append("")
        if conditionals:
            raise PreprocessorError(
                "unterminated conditional at end of file",
                SourceLocation(filename, len(lines), 1),
            )
        return output

    def _process_directive(
        self,
        directive: str,
        rest: str,
        location: SourceLocation,
        conditionals: list[tuple[bool, bool, bool]],
        active: bool,
        output: list[str],
    ) -> bool:
        """Handle one directive; returns True if recognized."""
        if directive == "ifdef":
            name = rest.split()[0] if rest.split() else ""
            taken = active and name in self._macros
            conditionals.append((taken, taken, active))
        elif directive == "ifndef":
            name = rest.split()[0] if rest.split() else ""
            taken = active and name not in self._macros
            conditionals.append((taken, taken, active))
        elif directive == "if":
            taken = active and self._evaluate_condition(rest, location)
            conditionals.append((taken, taken, active))
        elif directive == "elif":
            if not conditionals:
                raise PreprocessorError("#elif without #if", location)
            _, any_taken, parent = conditionals[-1]
            taken = (
                parent
                and not any_taken
                and self._evaluate_condition(rest, location)
            )
            conditionals[-1] = (taken, any_taken or taken, parent)
        elif directive == "else":
            if not conditionals:
                raise PreprocessorError("#else without #if", location)
            _, any_taken, parent = conditionals[-1]
            taken = parent and not any_taken
            conditionals[-1] = (taken, True, parent)
        elif directive == "endif":
            if not conditionals:
                raise PreprocessorError("#endif without #if", location)
            conditionals.pop()
        elif directive == "define":
            if active:
                self._handle_define(rest, location)
        elif directive == "undef":
            if active:
                name = rest.split()[0] if rest.split() else ""
                self._macros.pop(name, None)
        elif directive == "include":
            if active:
                output.extend(self._handle_include(rest, location))
        elif directive == "error":
            if active:
                raise PreprocessorError(f"#error {rest}", location)
        elif directive in ("pragma", "line"):
            pass  # Accepted and ignored.
        else:
            return False
        if directive not in ("include",):
            output.append("")  # Keep line numbering roughly stable.
        return True

    def _handle_define(self, rest: str, location: SourceLocation) -> None:
        match = _IDENTIFIER_RE.match(rest)
        if not match:
            raise PreprocessorError("#define requires a name", location)
        name = match.group(0)
        after = rest[match.end() :]
        if after.startswith("("):
            close = _matching_paren(after, 0)
            if close < 0:
                raise PreprocessorError(
                    "unterminated macro parameter list", location
                )
            param_text = after[1:close].strip()
            body = after[close + 1 :].strip()
            parameters: list[str] = []
            variadic = False
            if param_text:
                for param in param_text.split(","):
                    param = param.strip()
                    if param == "...":
                        variadic = True
                    elif _IDENTIFIER_RE.fullmatch(param):
                        parameters.append(param)
                    else:
                        raise PreprocessorError(
                            f"bad macro parameter {param!r}", location
                        )
            self._macros[name] = Macro(name, body, parameters, variadic)
        else:
            self._macros[name] = Macro(name, after.strip())

    def _handle_include(
        self, rest: str, location: SourceLocation
    ) -> list[str]:
        rest = rest.strip()
        if rest.startswith('"') and rest.endswith('"'):
            target = rest[1:-1]
        elif rest.startswith("<") and rest.endswith(">"):
            target = rest[1:-1]
        else:
            raise PreprocessorError(f"malformed #include {rest!r}", location)
        if target in self._include_stack:
            raise PreprocessorError(
                f"recursive #include of {target!r}", location
            )
        text = self._load_header(target, location)
        self._include_stack.append(target)
        try:
            return self._process_lines(
                _splice_continuations(_strip_comments(text)), target
            )
        finally:
            self._include_stack.pop()

    def _load_header(self, target: str, location: SourceLocation) -> str:
        if target in self._virtual_headers:
            return self._virtual_headers[target]
        for directory in self._include_dirs:
            candidate = os.path.join(directory, target)
            if os.path.isfile(candidate):
                with open(candidate, encoding="utf-8") as handle:
                    return handle.read()
        raise PreprocessorError(f"cannot find include file {target!r}", location)

    # ------------------------------------------------------------------
    # Conditional expressions.

    def _evaluate_condition(self, text: str, location: SourceLocation) -> bool:
        expanded = self._expand_line(
            _replace_defined(text, self._macros), location
        )
        # Remaining identifiers evaluate to 0, per the C standard.
        expanded = _IDENTIFIER_RE.sub(
            lambda match: "0" if match.group(0) not in ("defined",) else "0",
            expanded,
        )
        try:
            value = _ConditionParser(expanded, location).parse()
        except PreprocessorError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise PreprocessorError(
                f"cannot evaluate #if expression: {exc}", location
            ) from exc
        return value != 0

    # ------------------------------------------------------------------
    # Macro expansion.

    def _expand_line(
        self,
        line: str,
        location: SourceLocation,
        hidden: frozenset[str] = frozenset(),
        depth: int = 0,
    ) -> str:
        if depth > _MAX_EXPANSION_DEPTH:
            raise PreprocessorError("macro expansion too deep", location)
        result: list[str] = []
        index = 0
        length = len(line)
        while index < length:
            ch = line[index]
            if ch in "\"'":
                end = _skip_literal(line, index, location)
                result.append(line[index:end])
                index = end
                continue
            if ch.isalpha() or ch == "_":
                match = _IDENTIFIER_RE.match(line, index)
                assert match is not None
                name = match.group(0)
                index = match.end()
                macro = self._macros.get(name)
                if macro is None or name in hidden:
                    result.append(name)
                    continue
                if macro.is_function_like:
                    probe = index
                    while probe < length and line[probe] in " \t":
                        probe += 1
                    if probe >= length or line[probe] != "(":
                        result.append(name)
                        continue
                    close = _matching_paren(line, probe)
                    if close < 0:
                        raise PreprocessorError(
                            f"unterminated arguments to macro {name}", location
                        )
                    arguments = _split_arguments(line[probe + 1 : close])
                    # Arguments are fully macro-expanded before
                    # substitution (C89 6.8.3); only the rescan of the
                    # substituted body hides the current macro.
                    arguments = [
                        self._expand_line(
                            argument, location, hidden, depth + 1
                        )
                        for argument in arguments
                    ]
                    index = close + 1
                    body = self._substitute_parameters(
                        macro, arguments, location
                    )
                else:
                    body = macro.body
                result.append(
                    self._expand_line(
                        body, location, hidden | {name}, depth + 1
                    )
                )
                continue
            result.append(ch)
            index += 1
        return "".join(result)

    def _substitute_parameters(
        self, macro: Macro, arguments: list[str], location: SourceLocation
    ) -> str:
        parameters = macro.parameters or []
        if arguments == [""] and not parameters and not macro.variadic:
            arguments = []
        if macro.variadic:
            fixed = arguments[: len(parameters)]
            rest = arguments[len(parameters) :]
            mapping = dict(zip(parameters, (arg.strip() for arg in fixed)))
            mapping["__VA_ARGS__"] = ", ".join(arg.strip() for arg in rest)
        else:
            if len(arguments) != len(parameters):
                raise PreprocessorError(
                    f"macro {macro.name} expects {len(parameters)} arguments,"
                    f" got {len(arguments)}",
                    location,
                )
            mapping = dict(
                zip(parameters, (arg.strip() for arg in arguments))
            )

        result: list[str] = []
        index = 0
        body = macro.body
        while index < len(body):
            ch = body[index]
            if ch in "\"'":
                end = _skip_literal(body, index, location)
                result.append(body[index:end])
                index = end
                continue
            if ch.isalpha() or ch == "_":
                match = _IDENTIFIER_RE.match(body, index)
                assert match is not None
                name = match.group(0)
                index = match.end()
                result.append(mapping.get(name, name))
                continue
            result.append(ch)
            index += 1
        return "".join(result)


# ----------------------------------------------------------------------
# Text utilities.


def _strip_comments(text: str) -> str:
    """Replace comments with spaces, preserving newlines and literals."""
    result: list[str] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch in "\"'":
            end = _skip_literal(text, index, SourceLocation())
            result.append(text[index:end])
            index = end
        elif ch == "/" and index + 1 < length and text[index + 1] == "/":
            while index < length and text[index] != "\n":
                index += 1
        elif ch == "/" and index + 1 < length and text[index + 1] == "*":
            index += 2
            result.append(" ")
            while index < length:
                if text[index] == "\n":
                    result.append("\n")
                if (
                    text[index] == "*"
                    and index + 1 < length
                    and text[index + 1] == "/"
                ):
                    index += 2
                    break
                index += 1
        else:
            result.append(ch)
            index += 1
    return "".join(result)


def _splice_continuations(text: str) -> list[str]:
    """Split into lines, joining backslash-continued lines."""
    lines: list[str] = []
    pending = ""
    for raw in text.split("\n"):
        if raw.endswith("\\"):
            pending += raw[:-1]
            lines.append("")  # placeholder keeps later line numbers stable
            continue
        lines.append(pending + raw)
        pending = ""
    if pending:
        lines.append(pending)
    # The placeholder scheme above appends blanks *before* the joined line,
    # which shifts content down by the number of continuations; rebuild so
    # the joined line sits at the position of its first fragment instead.
    rebuilt: list[str] = []
    pending = ""
    pending_count = 0
    for raw in text.split("\n"):
        if raw.endswith("\\"):
            pending += raw[:-1]
            pending_count += 1
            continue
        rebuilt.append(pending + raw)
        rebuilt.extend([""] * pending_count)
        pending = ""
        pending_count = 0
    if pending:
        rebuilt.append(pending)
        rebuilt.extend([""] * (pending_count - 1))
    return rebuilt


def _skip_literal(text: str, start: int, location: SourceLocation) -> int:
    """Return the index just past the string/char literal at ``start``."""
    quote = text[start]
    index = start + 1
    while index < len(text):
        ch = text[index]
        if ch == "\\":
            index += 2
            continue
        if ch == quote:
            return index + 1
        if ch == "\n":
            break
        index += 1
    raise PreprocessorError("unterminated literal", location)


def _matching_paren(text: str, open_index: int) -> int:
    """Index of the ``)`` matching the ``(`` at ``open_index``, or -1."""
    depth = 0
    index = open_index
    while index < len(text):
        ch = text[index]
        if ch in "\"'":
            index = _skip_literal(text, index, SourceLocation())
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return index
        index += 1
    return -1


def _split_arguments(text: str) -> list[str]:
    """Split macro arguments on top-level commas."""
    arguments: list[str] = []
    depth = 0
    current: list[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch in "\"'":
            end = _skip_literal(text, index, SourceLocation())
            current.append(text[index:end])
            index = end
            continue
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            arguments.append("".join(current))
            current = []
        else:
            current.append(ch)
        index += 1
    arguments.append("".join(current))
    return arguments


def _replace_defined(text: str, macros: dict[str, Macro]) -> str:
    """Rewrite ``defined(X)`` / ``defined X`` to 1 or 0 before expansion."""
    pattern = re.compile(
        r"defined\s*(?:\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)|([A-Za-z_][A-Za-z0-9_]*))"
    )

    def replace(match: re.Match[str]) -> str:
        name = match.group(1) or match.group(2)
        return "1" if name in macros else "0"

    return pattern.sub(replace, text)


# ----------------------------------------------------------------------
# #if expression evaluation (integer constant expressions).


class _ConditionParser:
    """Recursive-descent evaluator for #if integer expressions."""

    def __init__(self, text: str, location: SourceLocation):
        from repro.frontend.lexer import tokenize

        self._tokens = tokenize(text, location.filename)
        self._pos = 0
        self._location = location

    def parse(self) -> int:
        value = self._ternary()
        from repro.frontend.tokens import TokenKind

        if self._tokens[self._pos].kind is not TokenKind.EOF:
            raise PreprocessorError(
                "trailing tokens in #if expression", self._location
            )
        return value

    def _peek_kind(self):
        return self._tokens[self._pos].kind

    def _take(self):
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _ternary(self) -> int:
        from repro.frontend.tokens import TokenKind

        condition = self._binary(0)
        if self._peek_kind() is TokenKind.QUESTION:
            self._take()
            then_value = self._ternary()
            if self._peek_kind() is not TokenKind.COLON:
                raise PreprocessorError("expected : in #if", self._location)
            self._take()
            else_value = self._ternary()
            return then_value if condition else else_value
        return condition

    _BINARY_LEVELS: list[dict[str, object]] = []

    def _binary(self, level: int) -> int:
        from repro.frontend.tokens import TokenKind

        levels = [
            {TokenKind.LOGICAL_OR: lambda a, b: int(bool(a) or bool(b))},
            {TokenKind.LOGICAL_AND: lambda a, b: int(bool(a) and bool(b))},
            {TokenKind.PIPE: lambda a, b: a | b},
            {TokenKind.CARET: lambda a, b: a ^ b},
            {TokenKind.AMP: lambda a, b: a & b},
            {
                TokenKind.EQ: lambda a, b: int(a == b),
                TokenKind.NE: lambda a, b: int(a != b),
            },
            {
                TokenKind.LT: lambda a, b: int(a < b),
                TokenKind.GT: lambda a, b: int(a > b),
                TokenKind.LE: lambda a, b: int(a <= b),
                TokenKind.GE: lambda a, b: int(a >= b),
            },
            {
                TokenKind.SHL: lambda a, b: a << b,
                TokenKind.SHR: lambda a, b: a >> b,
            },
            {
                TokenKind.PLUS: lambda a, b: a + b,
                TokenKind.MINUS: lambda a, b: a - b,
            },
            {
                TokenKind.STAR: lambda a, b: a * b,
                TokenKind.SLASH: lambda a, b: _div(a, b, self._location),
                TokenKind.PERCENT: lambda a, b: _mod(a, b, self._location),
            },
        ]
        if level >= len(levels):
            return self._unary()
        value = self._binary(level + 1)
        while self._peek_kind() in levels[level]:
            op = levels[level][self._take().kind]
            right = self._binary(level + 1)
            value = op(value, right)  # type: ignore[operator]
        return value

    def _unary(self) -> int:
        from repro.frontend.tokens import TokenKind

        kind = self._peek_kind()
        if kind is TokenKind.MINUS:
            self._take()
            return -self._unary()
        if kind is TokenKind.PLUS:
            self._take()
            return self._unary()
        if kind is TokenKind.BANG:
            self._take()
            return int(not self._unary())
        if kind is TokenKind.TILDE:
            self._take()
            return ~self._unary()
        if kind is TokenKind.LPAREN:
            self._take()
            value = self._ternary()
            if self._peek_kind() is not TokenKind.RPAREN:
                raise PreprocessorError("expected ) in #if", self._location)
            self._take()
            return value
        if kind in (TokenKind.INT_LITERAL, TokenKind.CHAR_LITERAL):
            return int(self._take().value)  # type: ignore[arg-type]
        raise PreprocessorError(
            f"unexpected token in #if expression: {self._take().text!r}",
            self._location,
        )


def _div(a: int, b: int, location: SourceLocation) -> int:
    if b == 0:
        raise PreprocessorError("division by zero in #if", location)
    return int(a / b) if (a < 0) != (b < 0) and a % b else a // b


def _mod(a: int, b: int, location: SourceLocation) -> int:
    if b == 0:
        raise PreprocessorError("modulo by zero in #if", location)
    return a - _div(a, b, location) * b


def preprocess(
    text: str,
    filename: str = "<input>",
    include_dirs: list[str] | None = None,
    virtual_headers: dict[str, str] | None = None,
    predefined: dict[str, str] | None = None,
) -> str:
    """Convenience wrapper around :class:`Preprocessor`."""
    return Preprocessor(include_dirs, virtual_headers, predefined).preprocess(
        text, filename
    )
