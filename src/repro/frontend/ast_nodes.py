"""Abstract syntax tree nodes for the C subset.

The parser assigns every expression node a ``ctype`` (its C type after
the usual conversions) because the paper's branch-prediction heuristics
are defined over "the abstract syntax and the C type system": e.g. the
pointer heuristic needs to know that a comparison's operand is a pointer.

Every node carries a :class:`SourceLocation` and a ``node_id`` unique
within its translation unit, used to key CFG blocks and profile events
back to syntax.  The counter restarts at every translation unit (see
:func:`reset_node_counter`), so ids are a pure function of the source
text — required for profiles cached on disk or computed in worker
processes to mean the same thing everywhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.frontend.ctypes import CType, FunctionType
from repro.frontend.errors import SourceLocation

_node_counter = itertools.count(1)


def reset_node_counter() -> None:
    """Restart node numbering (called at the start of each parse)."""
    global _node_counter
    _node_counter = itertools.count(1)


@dataclass
class Node:
    """Common base: location plus a per-translation-unit unique id."""

    location: SourceLocation = field(
        default_factory=SourceLocation, repr=False
    )
    node_id: int = field(default_factory=lambda: next(_node_counter))

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes; default is no children."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


# ----------------------------------------------------------------------
# Expressions.


@dataclass
class Expression(Node):
    """Base for all expressions; ``ctype`` is set by the parser."""

    ctype: Optional[CType] = None


@dataclass
class IntLiteral(Expression):
    value: int = 0


@dataclass
class FloatLiteral(Expression):
    value: float = 0.0


@dataclass
class CharLiteral(Expression):
    value: int = 0


@dataclass
class StringLiteral(Expression):
    value: str = ""


@dataclass
class Identifier(Expression):
    name: str = ""
    #: Filled by the parser: "local", "param", "global", "function",
    #: "enum-constant", or "builtin".
    binding: str = "local"
    #: For enum constants, the constant's value.
    constant_value: Optional[int] = None


@dataclass
class BinaryOp(Expression):
    """Arithmetic, relational, bitwise, and shift operators."""

    op: str = "+"
    left: Expression = None  # type: ignore[assignment]
    right: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class LogicalOp(Expression):
    """Short-circuit ``&&`` and ``||`` (kept distinct from BinaryOp
    because they introduce control flow)."""

    op: str = "&&"
    left: Expression = None  # type: ignore[assignment]
    right: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class UnaryOp(Expression):
    """Prefix ``-``, ``+``, ``!``, ``~``."""

    op: str = "-"
    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class AddressOf(Expression):
    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Dereference(Expression):
    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class IncDec(Expression):
    """``++``/``--``, prefix or postfix."""

    op: str = "++"
    is_prefix: bool = True
    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Assignment(Expression):
    """``=`` and the compound assignment operators."""

    op: str = "="
    target: Expression = None  # type: ignore[assignment]
    value: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


@dataclass
class Conditional(Expression):
    """The ternary ``?:`` operator."""

    condition: Expression = None  # type: ignore[assignment]
    then_expr: Expression = None  # type: ignore[assignment]
    else_expr: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.condition
        yield self.then_expr
        yield self.else_expr


@dataclass
class Comma(Expression):
    parts: list[Expression] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.parts


@dataclass
class Call(Expression):
    """A function call.  ``callee`` is an arbitrary expression; direct
    calls have an Identifier callee with binding ``"function"`` or
    ``"builtin"``."""

    callee: Expression = None  # type: ignore[assignment]
    arguments: list[Expression] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield self.callee
        yield from self.arguments

    @property
    def is_direct(self) -> bool:
        return isinstance(self.callee, Identifier) and self.callee.binding in (
            "function",
            "builtin",
        )

    @property
    def direct_name(self) -> Optional[str]:
        if self.is_direct:
            assert isinstance(self.callee, Identifier)
            return self.callee.name
        return None


@dataclass
class Index(Expression):
    base: Expression = None  # type: ignore[assignment]
    index: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index


@dataclass
class Member(Expression):
    """``base.name`` or ``base->name``."""

    base: Expression = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False

    def children(self) -> Iterator[Node]:
        yield self.base


@dataclass
class Cast(Expression):
    target_type: CType = None  # type: ignore[assignment]
    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class SizeofExpr(Expression):
    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class SizeofType(Expression):
    queried_type: CType = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Statements and declarations.


@dataclass
class Statement(Node):
    pass


@dataclass
class Declaration(Statement):
    """A single declarator (one name).  Multi-declarator source lines are
    split into several Declaration nodes by the parser."""

    name: str = ""
    declared_type: CType = None  # type: ignore[assignment]
    initializer: Optional["Initializer"] = None
    storage: str = ""  # "", "static", "extern", "typedef"

    def children(self) -> Iterator[Node]:
        if self.initializer is not None:
            yield self.initializer


@dataclass
class Initializer(Node):
    """Either a scalar expression or a brace-enclosed list."""

    expression: Optional[Expression] = None
    elements: Optional[list["Initializer"]] = None

    @property
    def is_list(self) -> bool:
        return self.elements is not None

    def children(self) -> Iterator[Node]:
        if self.expression is not None:
            yield self.expression
        if self.elements is not None:
            yield from self.elements


@dataclass
class ExpressionStatement(Statement):
    expression: Optional[Expression] = None  # None for the empty statement.

    def children(self) -> Iterator[Node]:
        if self.expression is not None:
            yield self.expression


@dataclass
class Compound(Statement):
    items: list[Statement] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.items


@dataclass
class If(Statement):
    condition: Expression = None  # type: ignore[assignment]
    then_branch: Statement = None  # type: ignore[assignment]
    else_branch: Optional[Statement] = None

    def children(self) -> Iterator[Node]:
        yield self.condition
        yield self.then_branch
        if self.else_branch is not None:
            yield self.else_branch


@dataclass
class While(Statement):
    condition: Expression = None  # type: ignore[assignment]
    body: Statement = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.condition
        yield self.body


@dataclass
class DoWhile(Statement):
    body: Statement = None  # type: ignore[assignment]
    condition: Expression = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.body
        yield self.condition


@dataclass
class For(Statement):
    init: Optional[Statement] = None  # Declaration or ExpressionStatement.
    condition: Optional[Expression] = None
    step: Optional[Expression] = None
    body: Statement = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.condition is not None:
            yield self.condition
        if self.step is not None:
            yield self.step
        yield self.body


@dataclass
class SwitchCase(Node):
    """One arm of a switch: its case values (several when labels stack)
    and the statements up to the next label.  Control falls through to
    the next arm unless the body transfers out."""

    values: list[int] = field(default_factory=list)
    is_default: bool = False
    body: list[Statement] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.body


@dataclass
class Switch(Statement):
    condition: Expression = None  # type: ignore[assignment]
    cases: list[SwitchCase] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield self.condition
        yield from self.cases

    @property
    def has_default(self) -> bool:
        return any(case.is_default for case in self.cases)


@dataclass
class Break(Statement):
    pass


@dataclass
class Continue(Statement):
    pass


@dataclass
class Return(Statement):
    value: Optional[Expression] = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class Goto(Statement):
    label: str = ""


@dataclass
class LabeledStatement(Statement):
    label: str = ""
    statement: Statement = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.statement


# ----------------------------------------------------------------------
# Top level.


@dataclass
class FunctionDef(Node):
    name: str = ""
    ftype: FunctionType = None  # type: ignore[assignment]
    parameter_names: list[str] = field(default_factory=list)
    body: Compound = None  # type: ignore[assignment]
    storage: str = ""

    def children(self) -> Iterator[Node]:
        yield self.body


@dataclass
class TranslationUnit(Node):
    """A fully parsed source file."""

    name: str = "<input>"
    functions: list[FunctionDef] = field(default_factory=list)
    globals: list[Declaration] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.globals
        yield from self.functions

    def function(self, name: str) -> FunctionDef:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r}")

    def function_names(self) -> list[str]:
        return [function.name for function in self.functions]
