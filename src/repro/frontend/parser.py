"""Recursive-descent parser for the C subset.

Produces a typed :class:`~repro.frontend.ast_nodes.TranslationUnit`.  The
parser resolves typedef names (the classic lexer-feedback problem) with
scoped symbol tables, computes the C type of every expression as it
builds it, and splits multi-declarator declarations into one
:class:`Declaration` node per name.

Grammar coverage: everything the benchmark suite and the paper's
analyses need — full expression grammar with C precedence, all statement
forms including ``goto``/labels and ``switch`` (arms grouped into
:class:`SwitchCase` nodes with fall-through preserved), struct/union/enum
definitions, typedefs, function pointers, arrays, and initializer lists.
Notable omissions: bitfields, K&R-style parameter declarations, and
designated initializers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend import ctypes as ct
from repro.frontend.builtins_list import BUILTIN_FUNCTIONS
from repro.frontend.errors import ParseError, SourceLocation
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind

_K = TokenKind

_TYPE_SPECIFIER_KINDS = {
    _K.KW_VOID,
    _K.KW_CHAR,
    _K.KW_SHORT,
    _K.KW_INT,
    _K.KW_LONG,
    _K.KW_FLOAT,
    _K.KW_DOUBLE,
    _K.KW_SIGNED,
    _K.KW_UNSIGNED,
    _K.KW_STRUCT,
    _K.KW_UNION,
    _K.KW_ENUM,
}

_STORAGE_KINDS = {
    _K.KW_TYPEDEF: "typedef",
    _K.KW_STATIC: "static",
    _K.KW_EXTERN: "extern",
    _K.KW_AUTO: "",
    _K.KW_REGISTER: "",
}

_QUALIFIER_KINDS = {_K.KW_CONST, _K.KW_VOLATILE}

_ASSIGNMENT_OPS = {
    _K.ASSIGN: "=",
    _K.ADD_ASSIGN: "+=",
    _K.SUB_ASSIGN: "-=",
    _K.MUL_ASSIGN: "*=",
    _K.DIV_ASSIGN: "/=",
    _K.MOD_ASSIGN: "%=",
    _K.AND_ASSIGN: "&=",
    _K.OR_ASSIGN: "|=",
    _K.XOR_ASSIGN: "^=",
    _K.SHL_ASSIGN: "<<=",
    _K.SHR_ASSIGN: ">>=",
}

# Binary operator precedence levels, weakest first.  (&& and || are
# handled by these tables too but built as LogicalOp nodes.)
_BINARY_LEVELS: list[dict[TokenKind, str]] = [
    {_K.LOGICAL_OR: "||"},
    {_K.LOGICAL_AND: "&&"},
    {_K.PIPE: "|"},
    {_K.CARET: "^"},
    {_K.AMP: "&"},
    {_K.EQ: "==", _K.NE: "!="},
    {_K.LT: "<", _K.GT: ">", _K.LE: "<=", _K.GE: ">="},
    {_K.SHL: "<<", _K.SHR: ">>"},
    {_K.PLUS: "+", _K.MINUS: "-"},
    {_K.STAR: "*", _K.SLASH: "/", _K.PERCENT: "%"},
]

_RELATIONAL_OPS = {"==", "!=", "<", ">", "<=", ">="}


class _Scope:
    """One lexical scope: an ordinary namespace and a tag namespace."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        # name -> ("typedef"|"var"|"param"|"function"|"enum-constant",
        #          CType, extra).  ``extra`` is the enum constant's value
        #          for enum-constants and the uniquified name for locals.
        self.names: dict[str, tuple[str, ct.CType, int | str | None]] = {}
        self.tags: dict[str, ct.CType] = {}

    def lookup(
        self, name: str
    ) -> Optional[tuple[str, ct.CType, int | str | None]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def lookup_tag(self, tag: str) -> Optional[ct.CType]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if tag in scope.tags:
                return scope.tags[tag]
            scope = scope.parent
        return None

    def declare(
        self,
        name: str,
        kind: str,
        ctype: ct.CType,
        extra: int | str | None = None,
    ) -> None:
        self.names[name] = (kind, ctype, extra)


class Parser:
    """Parses one translation unit."""

    def __init__(
        self,
        text: str,
        filename: str = "<input>",
        builtin_functions: Optional[dict[str, ct.FunctionType]] = None,
    ):
        self._tokens = tokenize(text, filename)
        self._pos = 0
        self._filename = filename
        self._global_scope = _Scope()
        self._scope = self._global_scope
        self._builtins = (
            BUILTIN_FUNCTIONS
            if builtin_functions is None
            else builtin_functions
        )
        # Local names used in the current function, for uniquifying
        # shadowed declarations (None at file scope).
        self._function_local_names: Optional[set[str]] = None

    def _uniquify_local(self, name: str) -> str:
        """Rename shadowing locals so every local in a function body has
        a distinct name (``x``, ``x#2``, ``x#3``, ...).  Downstream
        passes (CFG, interpreter) can then treat locals as a flat map."""
        if self._function_local_names is None:
            return name
        unique = name
        counter = 2
        while unique in self._function_local_names:
            unique = f"{name}#{counter}"
            counter += 1
        self._function_local_names.add(unique)
        return unique

    # ------------------------------------------------------------------
    # Token helpers.

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _take(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not _K.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value!r}{where}, found {token.text!r}",
                token.location,
            )
        return self._take()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._take()
        return None

    def _location(self) -> SourceLocation:
        return self._peek().location

    # ------------------------------------------------------------------
    # Scopes.

    def _push_scope(self) -> None:
        self._scope = _Scope(self._scope)

    def _pop_scope(self) -> None:
        assert self._scope.parent is not None
        self._scope = self._scope.parent

    def _is_typedef_name(self, name: str) -> bool:
        entry = self._scope.lookup(name)
        return entry is not None and entry[0] == "typedef"

    def _starts_declaration(self) -> bool:
        token = self._peek()
        if token.kind in _TYPE_SPECIFIER_KINDS:
            return True
        if token.kind in _STORAGE_KINDS or token.kind in _QUALIFIER_KINDS:
            return True
        if token.kind is _K.IDENTIFIER and self._is_typedef_name(token.text):
            return True
        return False

    # ------------------------------------------------------------------
    # Translation unit.

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(location=self._location(), name=self._filename)
        while not self._at(_K.EOF):
            self._parse_external_declaration(unit)
        return unit

    def _parse_external_declaration(self, unit: ast.TranslationUnit) -> None:
        location = self._location()
        storage, base_type = self._parse_declaration_specifiers()
        if self._accept(_K.SEMICOLON):
            return  # e.g. a bare struct definition.
        name, full_type, param_names = self._parse_declarator(base_type)
        if isinstance(full_type, ct.FunctionType) and self._at(_K.LBRACE):
            self._parse_function_definition(
                unit, name, full_type, param_names, storage, location
            )
            return
        # Otherwise: one or more init-declarators.
        self._finish_declaration(
            unit.globals, storage, base_type, name, full_type, location
        )

    def _parse_function_definition(
        self,
        unit: ast.TranslationUnit,
        name: str,
        ftype: ct.FunctionType,
        param_names: list[str],
        storage: str,
        location: SourceLocation,
    ) -> None:
        self._global_scope.declare(name, "function", ftype)
        self._push_scope()
        self._function_local_names = set(
            param_name for param_name in param_names if param_name
        )
        for param_name, param_type in zip(param_names, ftype.parameters):
            if param_name:
                self._scope.declare(param_name, "param", param_type)
        body = self._parse_compound()
        self._function_local_names = None
        self._pop_scope()
        unit.functions.append(
            ast.FunctionDef(
                location=location,
                name=name,
                ftype=ftype,
                parameter_names=param_names,
                body=body,
                storage=storage,
            )
        )

    def _finish_declaration(
        self,
        sink: list[ast.Declaration],
        storage: str,
        base_type: ct.CType,
        first_name: str,
        first_type: ct.CType,
        location: SourceLocation,
    ) -> None:
        """Handle init-declarator lists after the first declarator."""
        name, full_type = first_name, first_type
        while True:
            declaration = self._declare_one(
                storage, name, full_type, location
            )
            if declaration is not None:
                sink.append(declaration)
            if not self._accept(_K.COMMA):
                break
            location = self._location()
            name, full_type, _ = self._parse_declarator(base_type)
        self._expect(_K.SEMICOLON, "declaration")

    def _declare_one(
        self,
        storage: str,
        name: str,
        full_type: ct.CType,
        location: SourceLocation,
    ) -> Optional[ast.Declaration]:
        if storage == "typedef":
            self._scope.declare(name, "typedef", full_type)
            if self._at(_K.ASSIGN):
                raise ParseError("typedef cannot have initializer", location)
            return None
        initializer: Optional[ast.Initializer] = None
        if self._accept(_K.ASSIGN):
            initializer = self._parse_initializer()
        if isinstance(full_type, ct.FunctionType):
            self._scope.declare(name, "function", full_type)
            return None  # Prototype only; no AST node needed.
        full_type = self._complete_array_from_initializer(
            full_type, initializer
        )
        if self._scope is self._global_scope:
            unique_name = name
        else:
            unique_name = self._uniquify_local(name)
        self._scope.declare(name, "var", full_type, unique_name)
        return ast.Declaration(
            location=location,
            name=unique_name,
            declared_type=full_type,
            initializer=initializer,
            storage=storage,
        )

    @staticmethod
    def _complete_array_from_initializer(
        full_type: ct.CType, initializer: Optional[ast.Initializer]
    ) -> ct.CType:
        """Give ``int a[] = {...}`` / ``char s[] = "..."`` a length."""
        if (
            not isinstance(full_type, ct.ArrayType)
            or full_type.length is not None
            or initializer is None
        ):
            return full_type
        if initializer.is_list:
            assert initializer.elements is not None
            return ct.ArrayType(full_type.element, len(initializer.elements))
        if isinstance(initializer.expression, ast.StringLiteral):
            return ct.ArrayType(
                full_type.element, len(initializer.expression.value) + 1
            )
        return full_type

    def _parse_initializer(self) -> ast.Initializer:
        location = self._location()
        if self._accept(_K.LBRACE):
            elements: list[ast.Initializer] = []
            if not self._at(_K.RBRACE):
                elements.append(self._parse_initializer())
                while self._accept(_K.COMMA):
                    if self._at(_K.RBRACE):
                        break  # trailing comma
                    elements.append(self._parse_initializer())
            self._expect(_K.RBRACE, "initializer list")
            return ast.Initializer(location=location, elements=elements)
        return ast.Initializer(
            location=location, expression=self._parse_assignment_expression()
        )

    # ------------------------------------------------------------------
    # Declaration specifiers and declarators.

    def _parse_declaration_specifiers(self) -> tuple[str, ct.CType]:
        storage = ""
        int_words: list[str] = []
        base: Optional[ct.CType] = None
        location = self._location()
        while True:
            token = self._peek()
            if token.kind in _STORAGE_KINDS:
                self._take()
                new_storage = _STORAGE_KINDS[token.kind]
                if new_storage:
                    if storage:
                        raise ParseError(
                            "multiple storage classes", token.location
                        )
                    storage = new_storage
            elif token.kind in _QUALIFIER_KINDS:
                self._take()  # const/volatile: parsed and ignored.
            elif token.kind in (_K.KW_STRUCT, _K.KW_UNION):
                if base is not None or int_words:
                    raise ParseError("invalid type combination", token.location)
                base = self._parse_struct_or_union()
            elif token.kind is _K.KW_ENUM:
                if base is not None or int_words:
                    raise ParseError("invalid type combination", token.location)
                base = self._parse_enum()
            elif token.kind in _TYPE_SPECIFIER_KINDS:
                self._take()
                int_words.append(token.text)
            elif (
                token.kind is _K.IDENTIFIER
                and self._is_typedef_name(token.text)
                and base is None
                and not int_words
            ):
                self._take()
                entry = self._scope.lookup(token.text)
                assert entry is not None
                base = entry[1]
            else:
                break
        if base is None:
            base = _combine_int_words(int_words, location)
        elif int_words:
            raise ParseError("invalid type combination", location)
        return storage, base

    def _parse_struct_or_union(self) -> ct.CType:
        keyword = self._take()
        is_union = keyword.kind is _K.KW_UNION
        tag: Optional[str] = None
        if self._at(_K.IDENTIFIER):
            tag = self._take().text
        if self._at(_K.LBRACE):
            struct = self._obtain_struct(tag, is_union, define_here=True)
            self._take()  # {
            members: list[tuple[str, ct.CType]] = []
            while not self._at(_K.RBRACE):
                _, member_base = self._parse_declaration_specifiers()
                while True:
                    member_name, member_type, _ = self._parse_declarator(
                        member_base
                    )
                    members.append((member_name, member_type))
                    if not self._accept(_K.COMMA):
                        break
                self._expect(_K.SEMICOLON, "struct member")
            self._expect(_K.RBRACE, "struct body")
            struct.define_members(members)
            return struct
        if tag is None:
            raise ParseError(
                "struct/union needs a tag or a body", keyword.location
            )
        return self._obtain_struct(tag, is_union, define_here=False)

    def _obtain_struct(
        self, tag: Optional[str], is_union: bool, define_here: bool
    ) -> ct.StructType:
        if tag is not None:
            existing = self._scope.lookup_tag(tag)
            if isinstance(existing, ct.StructType):
                if define_here and existing.complete:
                    # A definition in an inner scope shadows the outer tag.
                    if tag in self._scope.tags:
                        raise ParseError(
                            f"redefinition of struct {tag}",
                            self._location(),
                        )
                else:
                    return existing
        struct = ct.StructType(tag, is_union)
        if tag is not None:
            self._scope.tags[tag] = struct
        return struct

    def _parse_enum(self) -> ct.CType:
        keyword = self._take()
        tag: Optional[str] = None
        if self._at(_K.IDENTIFIER):
            tag = self._take().text
        enum_type = ct.EnumType(tag)
        if self._at(_K.LBRACE):
            self._take()
            next_value = 0
            while not self._at(_K.RBRACE):
                name_token = self._expect(_K.IDENTIFIER, "enum body")
                if self._accept(_K.ASSIGN):
                    value_expr = self._parse_conditional_expression()
                    value = self._fold_constant(value_expr)
                    next_value = value
                self._scope.declare(
                    name_token.text, "enum-constant", ct.INT, next_value
                )
                next_value += 1
                if not self._accept(_K.COMMA):
                    break
            self._expect(_K.RBRACE, "enum body")
            if tag is not None:
                self._scope.tags[tag] = enum_type
            return enum_type
        if tag is None:
            raise ParseError("enum needs a tag or a body", keyword.location)
        existing = self._scope.lookup_tag(tag)
        if isinstance(existing, ct.EnumType):
            return existing
        self._scope.tags[tag] = enum_type
        return enum_type

    def _fold_constant(self, expression: ast.Expression) -> int:
        from repro.frontend.constfold import fold_int_constant

        value = fold_int_constant(expression)
        if value is None:
            raise ParseError(
                "expected integer constant expression", expression.location
            )
        return value

    def _parse_declarator(
        self, base_type: ct.CType
    ) -> tuple[str, ct.CType, list[str]]:
        """Parse one declarator.

        Returns ``(name, full_type, parameter_names)``;
        ``parameter_names`` is only meaningful when the result is a
        function type (it feeds function definitions).
        """
        name, build, param_names = self._parse_declarator_inner()
        return name, build(base_type), param_names

    def _parse_declarator_inner(
        self,
    ) -> tuple[str, Callable[[ct.CType], ct.CType], list[str]]:
        # Leading pointers apply to the *inside* of whatever follows.
        pointer_depth = 0
        while self._accept(_K.STAR):
            pointer_depth += 1
            while self._peek().kind in _QUALIFIER_KINDS:
                self._take()

        name = ""
        inner: Callable[[ct.CType], ct.CType] = lambda t: t
        param_names: list[str] = []

        if self._at(_K.LPAREN) and self._declarator_paren():
            self._take()
            name, inner, param_names = self._parse_declarator_inner()
            self._expect(_K.RPAREN, "declarator")
        elif self._at(_K.IDENTIFIER):
            name = self._take().text

        # Suffixes bind tighter than the leading pointers.
        suffixes: list[Callable[[ct.CType], ct.CType]] = []
        while True:
            if self._at(_K.LBRACKET):
                self._take()
                length: Optional[int] = None
                if not self._at(_K.RBRACKET):
                    length = self._fold_constant(
                        self._parse_conditional_expression()
                    )
                self._expect(_K.RBRACKET, "array declarator")
                suffixes.append(
                    lambda t, length=length: ct.ArrayType(t, length)
                )
            elif self._at(_K.LPAREN):
                params, variadic, names, unspecified = (
                    self._parse_parameter_list()
                )
                if not param_names:
                    param_names = names
                suffixes.append(
                    lambda t, params=tuple(params), variadic=variadic,
                    unspecified=unspecified: ct.FunctionType(
                        t, params, variadic, unspecified
                    )
                )
            else:
                break

        def build(base: ct.CType) -> ct.CType:
            result = base
            for _ in range(pointer_depth):
                result = ct.PointerType(result)
            for suffix in reversed(suffixes):
                result = suffix(result)
            return inner(result)

        return name, build, param_names

    def _declarator_paren(self) -> bool:
        """Disambiguate ``(`` in a declarator: grouping vs parameters."""
        token = self._peek(1)
        if token.kind is _K.STAR or token.kind is _K.LPAREN:
            return True
        if token.kind is _K.IDENTIFIER and not self._is_typedef_name(
            token.text
        ):
            return True
        return False

    def _parse_parameter_list(
        self,
    ) -> tuple[list[ct.CType], bool, list[str], bool]:
        self._expect(_K.LPAREN, "parameter list")
        params: list[ct.CType] = []
        names: list[str] = []
        variadic = False
        unspecified = False
        if self._at(_K.RPAREN):
            unspecified = True
        elif self._at(_K.KW_VOID) and self._peek(1).kind is _K.RPAREN:
            self._take()
        else:
            while True:
                if self._accept(_K.ELLIPSIS):
                    variadic = True
                    break
                _, param_base = self._parse_declaration_specifiers()
                param_name, param_type, _ = self._parse_declarator(param_base)
                param_type = ct.decay(param_type)
                params.append(param_type)
                names.append(param_name)
                if not self._accept(_K.COMMA):
                    break
        self._expect(_K.RPAREN, "parameter list")
        return params, variadic, names, unspecified

    # ------------------------------------------------------------------
    # Statements.

    def _parse_compound(self) -> ast.Compound:
        location = self._location()
        self._expect(_K.LBRACE, "compound statement")
        self._push_scope()
        items: list[ast.Statement] = []
        while not self._at(_K.RBRACE):
            if self._starts_declaration():
                items.extend(self._parse_local_declaration())
            else:
                items.append(self._parse_statement())
        self._pop_scope()
        self._expect(_K.RBRACE, "compound statement")
        return ast.Compound(location=location, items=items)

    def _parse_local_declaration(self) -> list[ast.Statement]:
        location = self._location()
        storage, base_type = self._parse_declaration_specifiers()
        if self._accept(_K.SEMICOLON):
            return []
        declarations: list[ast.Declaration] = []
        name, full_type, _ = self._parse_declarator(base_type)
        self._finish_declaration(
            declarations, storage, base_type, name, full_type, location
        )
        return list(declarations)

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.kind is _K.LBRACE:
            return self._parse_compound()
        if token.kind is _K.KW_IF:
            return self._parse_if()
        if token.kind is _K.KW_WHILE:
            return self._parse_while()
        if token.kind is _K.KW_DO:
            return self._parse_do_while()
        if token.kind is _K.KW_FOR:
            return self._parse_for()
        if token.kind is _K.KW_SWITCH:
            return self._parse_switch()
        if token.kind is _K.KW_BREAK:
            self._take()
            self._expect(_K.SEMICOLON, "break")
            return ast.Break(location=token.location)
        if token.kind is _K.KW_CONTINUE:
            self._take()
            self._expect(_K.SEMICOLON, "continue")
            return ast.Continue(location=token.location)
        if token.kind is _K.KW_RETURN:
            self._take()
            value = None
            if not self._at(_K.SEMICOLON):
                value = self._parse_expression()
            self._expect(_K.SEMICOLON, "return")
            return ast.Return(location=token.location, value=value)
        if token.kind is _K.KW_GOTO:
            self._take()
            label = self._expect(_K.IDENTIFIER, "goto").text
            self._expect(_K.SEMICOLON, "goto")
            return ast.Goto(location=token.location, label=label)
        if (
            token.kind is _K.IDENTIFIER
            and self._peek(1).kind is _K.COLON
            and not self._is_typedef_name(token.text)
        ):
            self._take()
            self._take()
            statement = self._parse_statement()
            return ast.LabeledStatement(
                location=token.location, label=token.text, statement=statement
            )
        if token.kind is _K.SEMICOLON:
            self._take()
            return ast.ExpressionStatement(location=token.location)
        expression = self._parse_expression()
        self._expect(_K.SEMICOLON, "expression statement")
        return ast.ExpressionStatement(
            location=token.location, expression=expression
        )

    def _parse_if(self) -> ast.If:
        location = self._take().location
        self._expect(_K.LPAREN, "if")
        condition = self._parse_expression()
        self._expect(_K.RPAREN, "if")
        then_branch = self._parse_statement()
        else_branch = None
        if self._accept(_K.KW_ELSE):
            else_branch = self._parse_statement()
        return ast.If(
            location=location,
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
        )

    def _parse_while(self) -> ast.While:
        location = self._take().location
        self._expect(_K.LPAREN, "while")
        condition = self._parse_expression()
        self._expect(_K.RPAREN, "while")
        body = self._parse_statement()
        return ast.While(location=location, condition=condition, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        location = self._take().location
        body = self._parse_statement()
        self._expect(_K.KW_WHILE, "do-while")
        self._expect(_K.LPAREN, "do-while")
        condition = self._parse_expression()
        self._expect(_K.RPAREN, "do-while")
        self._expect(_K.SEMICOLON, "do-while")
        return ast.DoWhile(location=location, body=body, condition=condition)

    def _parse_for(self) -> ast.For:
        location = self._take().location
        self._expect(_K.LPAREN, "for")
        self._push_scope()
        init: Optional[ast.Statement] = None
        if self._starts_declaration():
            declarations = self._parse_local_declaration()
            if len(declarations) == 1:
                init = declarations[0]
            else:
                init = ast.Compound(location=location, items=declarations)
        elif not self._at(_K.SEMICOLON):
            expression = self._parse_expression()
            self._expect(_K.SEMICOLON, "for")
            init = ast.ExpressionStatement(
                location=expression.location, expression=expression
            )
        else:
            self._take()
        condition = None
        if not self._at(_K.SEMICOLON):
            condition = self._parse_expression()
        self._expect(_K.SEMICOLON, "for")
        step = None
        if not self._at(_K.RPAREN):
            step = self._parse_expression()
        self._expect(_K.RPAREN, "for")
        body = self._parse_statement()
        self._pop_scope()
        return ast.For(
            location=location,
            init=init,
            condition=condition,
            step=step,
            body=body,
        )

    def _parse_switch(self) -> ast.Switch:
        location = self._take().location
        self._expect(_K.LPAREN, "switch")
        condition = self._parse_expression()
        self._expect(_K.RPAREN, "switch")
        self._expect(_K.LBRACE, "switch body")
        self._push_scope()
        cases: list[ast.SwitchCase] = []
        current: Optional[ast.SwitchCase] = None
        seen_values: set[int] = set()
        while not self._at(_K.RBRACE):
            if self._at(_K.KW_CASE) or self._at(_K.KW_DEFAULT):
                label_location = self._location()
                values: list[int] = []
                is_default = False
                # Stacked labels all map to the same arm.
                while self._at(_K.KW_CASE) or self._at(_K.KW_DEFAULT):
                    if self._accept(_K.KW_DEFAULT):
                        is_default = True
                    else:
                        self._take()
                        value = self._fold_constant(
                            self._parse_conditional_expression()
                        )
                        if value in seen_values:
                            raise ParseError(
                                f"duplicate case value {value}",
                                label_location,
                            )
                        seen_values.add(value)
                        values.append(value)
                    self._expect(_K.COLON, "case label")
                current = ast.SwitchCase(
                    location=label_location,
                    values=values,
                    is_default=is_default,
                )
                cases.append(current)
            else:
                if current is None:
                    raise ParseError(
                        "statement before first case label in switch",
                        self._location(),
                    )
                if self._starts_declaration():
                    current.body.extend(self._parse_local_declaration())
                else:
                    current.body.append(self._parse_statement())
        self._pop_scope()
        self._expect(_K.RBRACE, "switch body")
        return ast.Switch(location=location, condition=condition, cases=cases)

    # ------------------------------------------------------------------
    # Expressions.

    def _parse_expression(self) -> ast.Expression:
        location = self._location()
        first = self._parse_assignment_expression()
        if not self._at(_K.COMMA):
            return first
        parts = [first]
        while self._accept(_K.COMMA):
            parts.append(self._parse_assignment_expression())
        return ast.Comma(
            location=location, parts=parts, ctype=parts[-1].ctype
        )

    def _parse_assignment_expression(self) -> ast.Expression:
        left = self._parse_conditional_expression()
        token = self._peek()
        if token.kind in _ASSIGNMENT_OPS:
            self._take()
            right = self._parse_assignment_expression()
            return ast.Assignment(
                location=token.location,
                op=_ASSIGNMENT_OPS[token.kind],
                target=left,
                value=right,
                ctype=left.ctype,
            )
        return left

    def _parse_conditional_expression(self) -> ast.Expression:
        condition = self._parse_binary_expression(0)
        if not self._at(_K.QUESTION):
            return condition
        location = self._take().location
        then_expr = self._parse_expression()
        self._expect(_K.COLON, "conditional expression")
        else_expr = self._parse_conditional_expression()
        ctype = _conditional_type(then_expr.ctype, else_expr.ctype)
        return ast.Conditional(
            location=location,
            condition=condition,
            then_expr=then_expr,
            else_expr=else_expr,
            ctype=ctype,
        )

    def _parse_binary_expression(self, level: int) -> ast.Expression:
        if level >= len(_BINARY_LEVELS):
            return self._parse_cast_expression()
        left = self._parse_binary_expression(level + 1)
        table = _BINARY_LEVELS[level]
        while self._peek().kind in table:
            token = self._take()
            op = table[token.kind]
            right = self._parse_binary_expression(level + 1)
            if op in ("&&", "||"):
                left = ast.LogicalOp(
                    location=token.location,
                    op=op,
                    left=left,
                    right=right,
                    ctype=ct.INT,
                )
            else:
                left = ast.BinaryOp(
                    location=token.location,
                    op=op,
                    left=left,
                    right=right,
                    ctype=_binary_type(op, left, right),
                )
        return left

    def _parse_cast_expression(self) -> ast.Expression:
        if self._at(_K.LPAREN) and self._starts_type_name(1):
            location = self._take().location
            target_type = self._parse_type_name()
            self._expect(_K.RPAREN, "cast")
            operand = self._parse_cast_expression()
            return ast.Cast(
                location=location,
                target_type=target_type,
                operand=operand,
                ctype=target_type,
            )
        return self._parse_unary_expression()

    def _starts_type_name(self, offset: int) -> bool:
        token = self._peek(offset)
        if token.kind in _TYPE_SPECIFIER_KINDS or token.kind in _QUALIFIER_KINDS:
            return True
        return token.kind is _K.IDENTIFIER and self._is_typedef_name(
            token.text
        )

    def _parse_type_name(self) -> ct.CType:
        _, base = self._parse_declaration_specifiers()
        name, full_type, _ = self._parse_abstract_declarator(base)
        if name:
            raise ParseError("unexpected name in type name", self._location())
        return full_type

    def _parse_abstract_declarator(
        self, base: ct.CType
    ) -> tuple[str, ct.CType, list[str]]:
        # Abstract declarators reuse the normal declarator machinery;
        # a missing identifier simply leaves name empty.
        return self._parse_declarator(base)

    def _parse_unary_expression(self) -> ast.Expression:
        token = self._peek()
        if token.kind is _K.INCREMENT or token.kind is _K.DECREMENT:
            self._take()
            operand = self._parse_unary_expression()
            return ast.IncDec(
                location=token.location,
                op=token.text,
                is_prefix=True,
                operand=operand,
                ctype=operand.ctype,
            )
        if token.kind is _K.AMP:
            self._take()
            operand = self._parse_cast_expression()
            pointee = operand.ctype or ct.INT
            return ast.AddressOf(
                location=token.location,
                operand=operand,
                ctype=ct.PointerType(pointee),
            )
        if token.kind is _K.STAR:
            self._take()
            operand = self._parse_cast_expression()
            ctype = _pointee_type(operand.ctype)
            return ast.Dereference(
                location=token.location, operand=operand, ctype=ctype
            )
        if token.kind in (_K.MINUS, _K.PLUS, _K.BANG, _K.TILDE):
            self._take()
            operand = self._parse_cast_expression()
            if token.kind is _K.BANG:
                ctype: ct.CType = ct.INT
            else:
                ctype = ct.integer_promote(operand.ctype or ct.INT)
            return ast.UnaryOp(
                location=token.location,
                op=token.text,
                operand=operand,
                ctype=ctype,
            )
        if token.kind is _K.KW_SIZEOF:
            self._take()
            if self._at(_K.LPAREN) and self._starts_type_name(1):
                self._take()
                queried = self._parse_type_name()
                self._expect(_K.RPAREN, "sizeof")
                return ast.SizeofType(
                    location=token.location,
                    queried_type=queried,
                    ctype=ct.ULONG,
                )
            operand = self._parse_unary_expression()
            return ast.SizeofExpr(
                location=token.location, operand=operand, ctype=ct.ULONG
            )
        return self._parse_postfix_expression()

    def _parse_postfix_expression(self) -> ast.Expression:
        expression = self._parse_primary_expression()
        while True:
            token = self._peek()
            if token.kind is _K.LBRACKET:
                self._take()
                index = self._parse_expression()
                self._expect(_K.RBRACKET, "subscript")
                base_type = ct.decay(expression.ctype or ct.VOID_PTR)
                element = _pointee_type(base_type)
                expression = ast.Index(
                    location=token.location,
                    base=expression,
                    index=index,
                    ctype=element,
                )
            elif token.kind is _K.LPAREN:
                self._take()
                arguments: list[ast.Expression] = []
                if not self._at(_K.RPAREN):
                    arguments.append(self._parse_assignment_expression())
                    while self._accept(_K.COMMA):
                        arguments.append(self._parse_assignment_expression())
                self._expect(_K.RPAREN, "call")
                expression = ast.Call(
                    location=token.location,
                    callee=expression,
                    arguments=arguments,
                    ctype=_call_return_type(expression.ctype),
                )
            elif token.kind is _K.DOT or token.kind is _K.ARROW:
                self._take()
                name = self._expect(_K.IDENTIFIER, "member access").text
                arrow = token.kind is _K.ARROW
                base_type = expression.ctype
                if arrow:
                    base_type = _pointee_type(base_type)
                member_type: ct.CType = ct.INT
                if isinstance(base_type, ct.StructType) and base_type.has_member(
                    name
                ):
                    member_type = base_type.member(name).type
                expression = ast.Member(
                    location=token.location,
                    base=expression,
                    name=name,
                    arrow=arrow,
                    ctype=member_type,
                )
            elif token.kind is _K.INCREMENT or token.kind is _K.DECREMENT:
                self._take()
                expression = ast.IncDec(
                    location=token.location,
                    op=token.text,
                    is_prefix=False,
                    operand=expression,
                    ctype=expression.ctype,
                )
            else:
                return expression

    def _parse_primary_expression(self) -> ast.Expression:
        token = self._peek()
        if token.kind is _K.INT_LITERAL:
            self._take()
            return ast.IntLiteral(
                location=token.location,
                value=int(token.value),  # type: ignore[arg-type]
                ctype=ct.INT,
            )
        if token.kind is _K.FLOAT_LITERAL:
            self._take()
            return ast.FloatLiteral(
                location=token.location,
                value=float(token.value),  # type: ignore[arg-type]
                ctype=ct.DOUBLE,
            )
        if token.kind is _K.CHAR_LITERAL:
            self._take()
            return ast.CharLiteral(
                location=token.location,
                value=int(token.value),  # type: ignore[arg-type]
                ctype=ct.INT,
            )
        if token.kind is _K.STRING_LITERAL:
            parts = [self._take()]
            while self._at(_K.STRING_LITERAL):
                parts.append(self._take())
            value = "".join(str(part.value) for part in parts)
            return ast.StringLiteral(
                location=token.location,
                value=value,
                ctype=ct.ArrayType(ct.CHAR, len(value) + 1),
            )
        if token.kind is _K.IDENTIFIER:
            self._take()
            return self._resolve_identifier(token)
        if token.kind is _K.LPAREN:
            self._take()
            expression = self._parse_expression()
            self._expect(_K.RPAREN, "parenthesized expression")
            return expression
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.location
        )

    def _resolve_identifier(self, token: Token) -> ast.Identifier:
        entry = self._scope.lookup(token.text)
        if entry is not None:
            kind, ctype, extra = entry
            if kind == "enum-constant":
                assert isinstance(extra, int)
                return ast.Identifier(
                    location=token.location,
                    name=token.text,
                    binding="enum-constant",
                    constant_value=extra,
                    ctype=ct.INT,
                )
            resolved_name = token.text
            binding = {
                "var": "local",
                "param": "param",
                "function": "function",
                "typedef": "local",
            }.get(kind, "local")
            if kind == "var":
                if isinstance(extra, str):
                    resolved_name = extra
                else:
                    binding = "global"  # Only globals lack a unique name.
            return ast.Identifier(
                location=token.location,
                name=resolved_name,
                binding=binding,
                ctype=ctype,
            )
        if token.text in self._builtins:
            return ast.Identifier(
                location=token.location,
                name=token.text,
                binding="builtin",
                ctype=self._builtins[token.text],
            )
        if self._at(_K.LPAREN):
            # C89 implicit function declaration.
            implicit = ct.FunctionType(ct.INT, (), False, True)
            self._global_scope.declare(token.text, "function", implicit)
            return ast.Identifier(
                location=token.location,
                name=token.text,
                binding="function",
                ctype=implicit,
            )
        raise ParseError(
            f"use of undeclared identifier {token.text!r}", token.location
        )


# ----------------------------------------------------------------------
# Type computation helpers.


def _combine_int_words(words: list[str], location: SourceLocation) -> ct.CType:
    if not words:
        raise ParseError("expected type specifier", location)
    unique = sorted(words)
    table: dict[tuple[str, ...], ct.CType] = {
        ("void",): ct.VOID,
        ("char",): ct.CHAR,
        ("char", "signed"): ct.CHAR,
        ("char", "unsigned"): ct.UCHAR,
        ("short",): ct.SHORT,
        ("short", "signed"): ct.SHORT,
        ("int", "short"): ct.SHORT,
        ("int", "short", "signed"): ct.SHORT,
        ("short", "unsigned"): ct.USHORT,
        ("int", "short", "unsigned"): ct.USHORT,
        ("int",): ct.INT,
        ("signed",): ct.INT,
        ("int", "signed"): ct.INT,
        ("unsigned",): ct.UINT,
        ("int", "unsigned"): ct.UINT,
        ("long",): ct.LONG,
        ("long", "signed"): ct.LONG,
        ("int", "long"): ct.LONG,
        ("int", "long", "signed"): ct.LONG,
        ("long", "unsigned"): ct.ULONG,
        ("int", "long", "unsigned"): ct.ULONG,
        ("long", "long"): ct.LONG,
        ("int", "long", "long"): ct.LONG,
        ("long", "long", "unsigned"): ct.ULONG,
        ("int", "long", "long", "unsigned"): ct.ULONG,
        ("float",): ct.FLOAT,
        ("double",): ct.DOUBLE,
        ("double", "long"): ct.DOUBLE,
    }
    try:
        return table[tuple(unique)]
    except KeyError:
        raise ParseError(
            f"invalid type specifier combination: {' '.join(words)}", location
        ) from None


def _pointee_type(ctype: Optional[ct.CType]) -> ct.CType:
    if isinstance(ctype, ct.PointerType):
        return ctype.pointee
    if isinstance(ctype, ct.ArrayType):
        return ctype.element
    if isinstance(ctype, ct.FunctionType):
        return ctype
    return ct.INT


def _call_return_type(callee_type: Optional[ct.CType]) -> ct.CType:
    if isinstance(callee_type, ct.FunctionType):
        return callee_type.return_type
    if isinstance(callee_type, ct.PointerType) and isinstance(
        callee_type.pointee, ct.FunctionType
    ):
        return callee_type.pointee.return_type
    return ct.INT


def _binary_type(
    op: str, left: ast.Expression, right: ast.Expression
) -> ct.CType:
    left_type = ct.decay(left.ctype or ct.INT)
    right_type = ct.decay(right.ctype or ct.INT)
    if op in _RELATIONAL_OPS:
        return ct.INT
    if op in ("+", "-"):
        if isinstance(left_type, ct.PointerType) and right_type.is_integer:
            return left_type
        if (
            op == "+"
            and isinstance(right_type, ct.PointerType)
            and left_type.is_integer
        ):
            return right_type
        if (
            op == "-"
            and isinstance(left_type, ct.PointerType)
            and isinstance(right_type, ct.PointerType)
        ):
            return ct.LONG
    if left_type.is_arithmetic and right_type.is_arithmetic:
        return ct.usual_arithmetic_conversions(left_type, right_type)
    return ct.INT


def _conditional_type(
    then_type: Optional[ct.CType], else_type: Optional[ct.CType]
) -> ct.CType:
    then_type = ct.decay(then_type or ct.INT)
    else_type = ct.decay(else_type or ct.INT)
    if then_type.is_arithmetic and else_type.is_arithmetic:
        return ct.usual_arithmetic_conversions(then_type, else_type)
    if isinstance(then_type, ct.PointerType):
        return then_type
    if isinstance(else_type, ct.PointerType):
        return else_type
    return then_type


def parse(
    text: str,
    filename: str = "<input>",
    builtin_functions: Optional[dict[str, ct.FunctionType]] = None,
) -> ast.TranslationUnit:
    """Parse preprocessed C text into a translation unit.

    Node ids restart at 1 for every unit, making them (and everything
    keyed by them — call-site profile counts in particular) a pure
    function of the source text, stable across processes and cache
    round trips.
    """
    ast.reset_node_counter()
    return Parser(text, filename, builtin_functions).parse()
