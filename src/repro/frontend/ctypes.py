"""C type objects for the frontend and interpreter.

Sizes use a *cell* model rather than bytes: every scalar (char, int,
long, float, double, pointer, enum) occupies exactly one cell; an array
of ``n`` elements occupies ``n * sizeof(element)`` cells; a struct lays
its members out at consecutive cell offsets; a union overlays them at
offset 0.  Pointer arithmetic in the interpreter is scaled by cell sizes,
so ``p + 1`` on an ``int *`` moves one cell and on a ``struct s *`` moves
``sizeof(struct s)`` cells — exactly the C semantics, just with a
different unit.  ``sizeof(char) == sizeof(int) == 1`` is the one visible
divergence from a byte machine; the benchmark suite is written with that
in mind.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class CType:
    """Base class for all C types."""

    def sizeof(self) -> int:
        raise NotImplementedError

    @property
    def is_arithmetic(self) -> bool:
        return isinstance(self, (IntType, FloatType, EnumType))

    @property
    def is_integer(self) -> bool:
        return isinstance(self, (IntType, EnumType))

    @property
    def is_scalar(self) -> bool:
        return self.is_arithmetic or isinstance(self, PointerType)

    @property
    def is_pointerish(self) -> bool:
        """Pointer or array (things that decay to an address)."""
        return isinstance(self, (PointerType, ArrayType))


@dataclass(frozen=True)
class VoidType(CType):
    def sizeof(self) -> int:
        return 1  # Allows void* arithmetic in the cell model.

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """Any integer type.  ``rank`` orders conversions; ``bits`` bounds
    the value range used for wraparound in the interpreter."""

    name: str = "int"
    signed: bool = True
    rank: int = 3  # char=1, short=2, int=3, long=4
    bits: int = 32

    def sizeof(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FloatType(CType):
    name: str = "double"
    rank: int = 2  # float=1, double=2

    def sizeof(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType = field(default_factory=VoidType)

    def sizeof(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType = field(default_factory=lambda: INT)
    length: int | None = None  # None for incomplete arrays.

    def sizeof(self) -> int:
        if self.length is None:
            raise ValueError("sizeof applied to incomplete array type")
        return self.length * self.element.sizeof()

    def decay(self) -> PointerType:
        return PointerType(self.element)

    def __str__(self) -> str:
        length = "" if self.length is None else str(self.length)
        return f"{self.element}[{length}]"


@dataclass(frozen=True)
class StructMember:
    name: str
    type: CType
    offset: int


class StructType(CType):
    """A struct or union.  Mutable because C allows forward-declared tags
    completed later; identity (not value) equality is intended."""

    def __init__(self, tag: str | None, is_union: bool = False):
        self.tag = tag
        self.is_union = is_union
        self.members: list[StructMember] = []
        self._by_name: dict[str, StructMember] = {}
        self.complete = False

    def define_members(self, members: list[tuple[str, CType]]) -> None:
        if self.complete:
            raise ValueError(f"redefinition of struct {self.tag}")
        offset = 0
        for name, ctype in members:
            member_offset = 0 if self.is_union else offset
            member = StructMember(name, ctype, member_offset)
            self.members.append(member)
            self._by_name[name] = member
            offset += ctype.sizeof()
        self.complete = True

    def member(self, name: str) -> StructMember:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"struct {self.tag or '<anonymous>'} has no member {name!r}"
            ) from None

    def has_member(self, name: str) -> bool:
        return name in self._by_name

    def sizeof(self) -> int:
        if not self.complete:
            raise ValueError(
                f"sizeof applied to incomplete struct {self.tag}"
            )
        if self.is_union:
            return max(
                (member.type.sizeof() for member in self.members), default=1
            )
        return sum(member.type.sizeof() for member in self.members) or 1

    def __str__(self) -> str:
        keyword = "union" if self.is_union else "struct"
        return f"{keyword} {self.tag or '<anonymous>'}"


@dataclass(frozen=True)
class EnumType(CType):
    tag: str | None = None

    def sizeof(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"enum {self.tag or '<anonymous>'}"


@dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType = field(default_factory=VoidType)
    parameters: tuple[CType, ...] = ()
    variadic: bool = False
    # True when declared with an empty parameter list: f().
    unspecified: bool = False

    def sizeof(self) -> int:
        raise ValueError("sizeof applied to function type")

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        if self.variadic:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type}({params})"


# Canonical singletons for the common types.
VOID = VoidType()
CHAR = IntType("char", signed=True, rank=1, bits=8)
UCHAR = IntType("unsigned char", signed=False, rank=1, bits=8)
SHORT = IntType("short", signed=True, rank=2, bits=16)
USHORT = IntType("unsigned short", signed=False, rank=2, bits=16)
INT = IntType("int", signed=True, rank=3, bits=32)
UINT = IntType("unsigned int", signed=False, rank=3, bits=32)
LONG = IntType("long", signed=True, rank=4, bits=64)
ULONG = IntType("unsigned long", signed=False, rank=4, bits=64)
FLOAT = FloatType("float", rank=1)
DOUBLE = FloatType("double", rank=2)
CHAR_PTR = PointerType(CHAR)
VOID_PTR = PointerType(VOID)


def integer_promote(ctype: CType) -> CType:
    """C integer promotion: anything below int promotes to int."""
    if isinstance(ctype, EnumType):
        return INT
    if isinstance(ctype, IntType) and ctype.rank < INT.rank:
        return INT
    return ctype


def usual_arithmetic_conversions(left: CType, right: CType) -> CType:
    """The common type of two arithmetic operands (C89 rules, cell model)."""
    if isinstance(left, FloatType) or isinstance(right, FloatType):
        candidates = [t for t in (left, right) if isinstance(t, FloatType)]
        return max(candidates, key=lambda t: t.rank)
    left = integer_promote(left)
    right = integer_promote(right)
    assert isinstance(left, IntType) and isinstance(right, IntType)
    if left.rank != right.rank:
        return left if left.rank > right.rank else right
    if left.signed == right.signed:
        return left
    return left if not left.signed else right


def decay(ctype: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay."""
    if isinstance(ctype, ArrayType):
        return ctype.decay()
    if isinstance(ctype, FunctionType):
        return PointerType(ctype)
    return ctype


def is_void_pointer(ctype: CType) -> bool:
    """True for ``void*`` (any pointer whose pointee is void)."""
    return isinstance(ctype, PointerType) and isinstance(
        ctype.pointee, VoidType
    )


def is_null_pointer_comparison(left: CType, right: CType) -> bool:
    """True when comparing a pointer against an integer (NULL idiom)."""
    return (left.is_pointerish and right.is_integer) or (
        right.is_pointerish and left.is_integer
    )
