"""Diagnostics shared by every frontend stage.

Every token and AST node carries a :class:`SourceLocation`.  All frontend
errors derive from :class:`FrontendError` so callers can catch one type
regardless of which stage (preprocessing, lexing, parsing, type checking)
rejected the input.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in preprocessed source text.

    ``filename`` is the logical file name (tracks ``#include``), ``line``
    and ``column`` are 1-based.
    """

    filename: str = "<input>"
    line: int = 1
    column: int = 1

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for synthesized constructs with no source counterpart.
UNKNOWN_LOCATION = SourceLocation("<builtin>", 0, 0)


class FrontendError(Exception):
    """Base class for all errors raised while processing C source."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location or UNKNOWN_LOCATION
        super().__init__(f"{self.location}: {message}")

    def diagnostic(self) -> str:
        """The one-line ``file:line:col: message`` form of this error.

        This is what CLI commands print (to stderr, with a nonzero
        exit) instead of a traceback when user-supplied source is
        rejected.
        """
        return f"{self.location}: {self.message}"

    def diagnostic_dict(self) -> dict:
        """The structured form of :meth:`diagnostic`.

        This is the analysis daemon's 400 error surface: rejected
        source becomes ``{error, file, line, col}`` JSON — never a
        traceback — so API clients can jump to the offending token
        exactly like CLI users do from the one-line form.
        """
        return {
            "error": self.message,
            "file": self.location.filename,
            "line": self.location.line,
            "col": self.location.column,
        }


class PreprocessorError(FrontendError):
    """Raised for malformed directives, unbalanced conditionals, etc."""


class LexError(FrontendError):
    """Raised for characters or literals the lexer cannot tokenize."""


class ParseError(FrontendError):
    """Raised when the token stream does not match the C grammar."""


class TypeError_(FrontendError):
    """Raised for semantic type violations detected by the frontend.

    Named with a trailing underscore to avoid shadowing the builtin.
    """
