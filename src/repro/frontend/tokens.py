"""Token definitions for the C-subset lexer.

The lexer produces a flat list of :class:`Token` objects.  Token kinds are
members of :class:`TokenKind`; punctuation and keywords each get their own
kind so the parser can match on kind alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.frontend.errors import SourceLocation


class TokenKind(enum.Enum):
    """Every distinct token the lexer can produce."""

    # Literals and names.
    IDENTIFIER = "identifier"
    INT_LITERAL = "int-literal"
    FLOAT_LITERAL = "float-literal"
    CHAR_LITERAL = "char-literal"
    STRING_LITERAL = "string-literal"

    # Keywords.
    KW_AUTO = "auto"
    KW_BREAK = "break"
    KW_CASE = "case"
    KW_CHAR = "char"
    KW_CONST = "const"
    KW_CONTINUE = "continue"
    KW_DEFAULT = "default"
    KW_DO = "do"
    KW_DOUBLE = "double"
    KW_ELSE = "else"
    KW_ENUM = "enum"
    KW_EXTERN = "extern"
    KW_FLOAT = "float"
    KW_FOR = "for"
    KW_GOTO = "goto"
    KW_IF = "if"
    KW_INT = "int"
    KW_LONG = "long"
    KW_REGISTER = "register"
    KW_RETURN = "return"
    KW_SHORT = "short"
    KW_SIGNED = "signed"
    KW_SIZEOF = "sizeof"
    KW_STATIC = "static"
    KW_STRUCT = "struct"
    KW_SWITCH = "switch"
    KW_TYPEDEF = "typedef"
    KW_UNION = "union"
    KW_UNSIGNED = "unsigned"
    KW_VOID = "void"
    KW_VOLATILE = "volatile"
    KW_WHILE = "while"

    # Punctuation, longest-match first in the lexer table.
    ELLIPSIS = "..."
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="
    ARROW = "->"
    INCREMENT = "++"
    DECREMENT = "--"
    SHL = "<<"
    SHR = ">>"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    LOGICAL_AND = "&&"
    LOGICAL_OR = "||"
    ADD_ASSIGN = "+="
    SUB_ASSIGN = "-="
    MUL_ASSIGN = "*="
    DIV_ASSIGN = "/="
    MOD_ASSIGN = "%="
    AND_ASSIGN = "&="
    OR_ASSIGN = "|="
    XOR_ASSIGN = "^="
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COMMA = ","
    COLON = ":"
    QUESTION = "?"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LT = "<"
    GT = ">"
    DOT = "."

    # End of input sentinel.
    EOF = "<eof>"


#: Map from keyword spelling to its TokenKind.
KEYWORDS: dict[str, TokenKind] = {
    kind.value: kind
    for kind in TokenKind
    if kind.name.startswith("KW_")
}

#: Punctuators ordered longest-first so greedy matching is correct.
PUNCTUATORS: list[tuple[str, TokenKind]] = sorted(
    (
        (kind.value, kind)
        for kind in TokenKind
        if not kind.name.startswith("KW_")
        and kind
        not in (
            TokenKind.IDENTIFIER,
            TokenKind.INT_LITERAL,
            TokenKind.FLOAT_LITERAL,
            TokenKind.CHAR_LITERAL,
            TokenKind.STRING_LITERAL,
            TokenKind.EOF,
        )
    ),
    key=lambda pair: len(pair[0]),
    reverse=True,
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``text`` is the exact source spelling.  ``value`` carries the decoded
    payload for literals: an ``int`` for integer and character literals, a
    ``float`` for floating literals, and the decoded ``str`` (escapes
    resolved, no quotes) for string literals.
    """

    kind: TokenKind
    text: str
    location: SourceLocation = field(default_factory=SourceLocation)
    value: int | float | str | None = None

    def is_keyword(self) -> bool:
        return self.kind.name.startswith("KW_")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.location})"
