"""Hand-written lexer for the C subset.

The lexer consumes preprocessed text (comments may still be present; they
are skipped here) and produces a list of :class:`Token`.  It tracks line
and column so every downstream diagnostic can point at real source.

Supported literal forms:

* decimal, octal (``0777``), and hex (``0x1F``) integers with optional
  ``u``/``l`` suffixes (suffixes are recorded in the spelling only);
* floating literals with optional exponent and ``f`` suffix;
* character literals with the usual escapes;
* string literals with escapes; adjacent string literals are concatenated
  by the parser, not here.
"""

from __future__ import annotations

from repro.frontend.errors import LexError, SourceLocation
from repro.frontend.tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_SIMPLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "?": "?",
}


class Lexer:
    """Tokenizes one translation unit's worth of text."""

    def __init__(self, text: str, filename: str = "<input>"):
        self._text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Return all tokens in the input, ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenKind.EOF, "", self._location()))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # Scanning machinery.

    def _location(self) -> SourceLocation:
        return SourceLocation(self._filename, self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        consumed = self._text[self._pos : self._pos + count]
        for ch in consumed:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return consumed

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start)
            elif ch == "#":
                # Stray directives (e.g. #line markers the preprocessor
                # leaves behind) are skipped to end of line.
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_identifier()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number()
        if ch == "'":
            return self._lex_char()
        if ch == '"':
            return self._lex_string()
        return self._lex_punctuator()

    def _lex_identifier(self) -> Token:
        location = self._location()
        start = self._pos
        while self._pos < len(self._text) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self._text[start : self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENTIFIER)
        return Token(kind, text, location)

    def _lex_number(self) -> Token:
        location = self._location()
        start = self._pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex_digit(self._peek()):
                raise LexError("malformed hex literal", location)
            while self._is_hex_digit(self._peek()):
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in ("e", "E") and (
                self._peek(1).isdigit()
                or (
                    self._peek(1) in ("+", "-")
                    and self._peek(2).isdigit()
                )
            ):
                is_float = True
                self._advance()
                if self._peek() in ("+", "-"):
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        body = self._text[start : self._pos]
        suffix_start = self._pos
        # Tuple membership, not substring membership: _peek() returns
        # "" at end of input, and "" in "uUlLfF" would be True.
        while self._peek() in ("u", "U", "l", "L", "f", "F"):
            self._advance()
        suffix = self._text[suffix_start : self._pos]
        text = body + suffix
        if is_float or "f" in suffix or "F" in suffix:
            return Token(TokenKind.FLOAT_LITERAL, text, location, float(body))
        if body.startswith(("0x", "0X")):
            value = int(body, 16)
        elif len(body) > 1 and body.startswith("0"):
            try:
                value = int(body, 8)  # C octal: 0777
            except ValueError:
                raise LexError(
                    f"invalid octal literal {body}", location
                ) from None
        else:
            value = int(body, 10)
        return Token(TokenKind.INT_LITERAL, text, location, value)

    @staticmethod
    def _is_hex_digit(ch: str) -> bool:
        return bool(ch) and ch in "0123456789abcdefABCDEF"

    def _read_escape(self, location: SourceLocation) -> str:
        """Consume one escape sequence body (after the backslash)."""
        ch = self._peek()
        if not ch:
            raise LexError("unterminated escape sequence", location)
        if ch == "x":
            self._advance()
            digits = ""
            while self._is_hex_digit(self._peek()):
                digits += self._advance()
            if not digits:
                raise LexError("\\x with no hex digits", location)
            return chr(int(digits, 16))
        if ch.isdigit():
            digits = ""
            while self._peek().isdigit() and len(digits) < 3:
                digits += self._advance()
            return chr(int(digits, 8))
        if ch in _SIMPLE_ESCAPES:
            self._advance()
            return _SIMPLE_ESCAPES[ch]
        raise LexError(f"unknown escape sequence \\{ch}", location)

    def _lex_char(self) -> Token:
        location = self._location()
        start = self._pos
        self._advance()  # opening quote
        if self._peek() == "\\":
            self._advance()
            decoded = self._read_escape(location)
        elif self._peek() in ("", "\n", "'"):
            raise LexError("empty or unterminated character literal", location)
        else:
            decoded = self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", location)
        self._advance()
        text = self._text[start : self._pos]
        return Token(TokenKind.CHAR_LITERAL, text, location, ord(decoded))

    def _lex_string(self) -> Token:
        location = self._location()
        start = self._pos
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch in ("", "\n"):
                raise LexError("unterminated string literal", location)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                chars.append(self._read_escape(location))
            else:
                chars.append(self._advance())
        text = self._text[start : self._pos]
        return Token(TokenKind.STRING_LITERAL, text, location, "".join(chars))

    def _lex_punctuator(self) -> Token:
        location = self._location()
        remaining = self._text[self._pos :]
        for spelling, kind in PUNCTUATORS:
            if remaining.startswith(spelling):
                self._advance(len(spelling))
                return Token(kind, spelling, location)
        raise LexError(f"unexpected character {self._peek()!r}", location)


def tokenize(text: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: tokenize ``text`` in one call."""
    return Lexer(text, filename).tokenize()
