"""Canonical signatures of the library functions the runtime provides.

The frontend owns this list so the parser can type calls to library
functions without importing the interpreter; :mod:`repro.interp.libc`
implements every entry.  The paper's "error calls are unlikely" branch
heuristic also keys off :data:`ERROR_FUNCTIONS`.
"""

from __future__ import annotations

from repro.frontend import ctypes as ct

_INT = ct.INT
_LONG = ct.LONG
_DOUBLE = ct.DOUBLE
_VOID = ct.VOID
_CHAR_PTR = ct.CHAR_PTR
_CONST_CHAR_PTR = ct.CHAR_PTR
_VOID_PTR = ct.VOID_PTR


def _fn(
    ret: ct.CType, *params: ct.CType, variadic: bool = False
) -> ct.FunctionType:
    return ct.FunctionType(ret, tuple(params), variadic)


#: name -> FunctionType for every runtime-provided function.
BUILTIN_FUNCTIONS: dict[str, ct.FunctionType] = {
    # <stdio.h>
    "printf": _fn(_INT, _CONST_CHAR_PTR, variadic=True),
    "sprintf": _fn(_INT, _CHAR_PTR, _CONST_CHAR_PTR, variadic=True),
    "putchar": _fn(_INT, _INT),
    "puts": _fn(_INT, _CONST_CHAR_PTR),
    "getchar": _fn(_INT),
    "gets": _fn(_CHAR_PTR, _CHAR_PTR),
    # <stdlib.h>
    "malloc": _fn(_VOID_PTR, ct.ULONG),
    "calloc": _fn(_VOID_PTR, ct.ULONG, ct.ULONG),
    "realloc": _fn(_VOID_PTR, _VOID_PTR, ct.ULONG),
    "free": _fn(_VOID, _VOID_PTR),
    "exit": _fn(_VOID, _INT),
    "abort": _fn(_VOID),
    "atoi": _fn(_INT, _CONST_CHAR_PTR),
    "atol": _fn(_LONG, _CONST_CHAR_PTR),
    "atof": _fn(_DOUBLE, _CONST_CHAR_PTR),
    "abs": _fn(_INT, _INT),
    "labs": _fn(_LONG, _LONG),
    "rand": _fn(_INT),
    "srand": _fn(_VOID, ct.UINT),
    "qsort": _fn(
        _VOID,
        _VOID_PTR,
        ct.ULONG,
        ct.ULONG,
        ct.PointerType(ct.FunctionType(_INT, (_VOID_PTR, _VOID_PTR))),
    ),
    # <string.h>
    "strlen": _fn(ct.ULONG, _CONST_CHAR_PTR),
    "strcmp": _fn(_INT, _CONST_CHAR_PTR, _CONST_CHAR_PTR),
    "strncmp": _fn(_INT, _CONST_CHAR_PTR, _CONST_CHAR_PTR, ct.ULONG),
    "strcpy": _fn(_CHAR_PTR, _CHAR_PTR, _CONST_CHAR_PTR),
    "strncpy": _fn(_CHAR_PTR, _CHAR_PTR, _CONST_CHAR_PTR, ct.ULONG),
    "strcat": _fn(_CHAR_PTR, _CHAR_PTR, _CONST_CHAR_PTR),
    "strchr": _fn(_CHAR_PTR, _CONST_CHAR_PTR, _INT),
    "strstr": _fn(_CHAR_PTR, _CONST_CHAR_PTR, _CONST_CHAR_PTR),
    "memset": _fn(_VOID_PTR, _VOID_PTR, _INT, ct.ULONG),
    "memcpy": _fn(_VOID_PTR, _VOID_PTR, _VOID_PTR, ct.ULONG),
    "memcmp": _fn(_INT, _VOID_PTR, _VOID_PTR, ct.ULONG),
    # <ctype.h>
    "isdigit": _fn(_INT, _INT),
    "isalpha": _fn(_INT, _INT),
    "isalnum": _fn(_INT, _INT),
    "isspace": _fn(_INT, _INT),
    "isupper": _fn(_INT, _INT),
    "islower": _fn(_INT, _INT),
    "ispunct": _fn(_INT, _INT),
    "toupper": _fn(_INT, _INT),
    "tolower": _fn(_INT, _INT),
    # <math.h>
    "sqrt": _fn(_DOUBLE, _DOUBLE),
    "fabs": _fn(_DOUBLE, _DOUBLE),
    "sin": _fn(_DOUBLE, _DOUBLE),
    "cos": _fn(_DOUBLE, _DOUBLE),
    "tan": _fn(_DOUBLE, _DOUBLE),
    "atan": _fn(_DOUBLE, _DOUBLE),
    "atan2": _fn(_DOUBLE, _DOUBLE, _DOUBLE),
    "exp": _fn(_DOUBLE, _DOUBLE),
    "log": _fn(_DOUBLE, _DOUBLE),
    "pow": _fn(_DOUBLE, _DOUBLE, _DOUBLE),
    "floor": _fn(_DOUBLE, _DOUBLE),
    "ceil": _fn(_DOUBLE, _DOUBLE),
    "fmod": _fn(_DOUBLE, _DOUBLE, _DOUBLE),
    # <assert.h> (lowered by the suite's header to a call)
    "__assert_fail": _fn(_VOID, _CONST_CHAR_PTR, _INT),
}

#: Functions whose call marks a path as an error path (paper §4.1:
#: "Errors (calling abort or exit) are unlikely").
ERROR_FUNCTIONS: frozenset[str] = frozenset(
    {"abort", "exit", "__assert_fail"}
)

BUILTIN_NAMES: frozenset[str] = frozenset(BUILTIN_FUNCTIONS)
