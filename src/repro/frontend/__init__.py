"""C-subset frontend: preprocessor, lexer, parser, types, folding.

:func:`compile_source` is the one-call entry point used throughout the
library: it preprocesses and parses a C source string into a typed
:class:`~repro.frontend.ast_nodes.TranslationUnit`.
"""

from __future__ import annotations

from repro.frontend.ast_nodes import TranslationUnit
from repro.frontend.errors import (
    FrontendError,
    LexError,
    ParseError,
    PreprocessorError,
    SourceLocation,
)
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse
from repro.frontend.preprocessor import Preprocessor, preprocess

__all__ = [
    "FrontendError",
    "LexError",
    "ParseError",
    "Preprocessor",
    "PreprocessorError",
    "SourceLocation",
    "TranslationUnit",
    "compile_source",
    "parse",
    "preprocess",
    "tokenize",
]


def compile_source(
    text: str,
    filename: str = "<input>",
    include_dirs: list[str] | None = None,
    virtual_headers: dict[str, str] | None = None,
    predefined: dict[str, str] | None = None,
) -> TranslationUnit:
    """Preprocess and parse C source text in one step."""
    preprocessed = preprocess(
        text,
        filename,
        include_dirs=include_dirs,
        virtual_headers=virtual_headers,
        predefined=predefined,
    )
    return parse(preprocessed, filename)
