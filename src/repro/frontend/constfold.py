"""Compile-time evaluation of constant expressions.

Two uses, both from the paper:

* ``case`` labels, enum values, and array bounds must be integer constant
  expressions (:func:`fold_int_constant`);
* branches whose controlling expression folds to a constant are
  *predicted but excluded from miss-rate scoring*, because a real
  compiler's constant propagation would eliminate them and counting them
  would make predictors look artificially good (paper §2).
  :func:`fold_condition` answers "is this condition statically known,
  and if so which way does it go?".
"""

from __future__ import annotations

from typing import Optional

from repro.frontend import ast_nodes as ast

_INT_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "|": lambda a, b: a | b,
    "&": lambda a, b: a & b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b if 0 <= b < 256 else None,
    ">>": lambda a, b: a >> b if 0 <= b < 256 else None,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
}


def _c_div(a: int, b: int) -> int:
    """C semantics: truncation toward zero."""
    quotient = abs(a) // abs(b)
    return quotient if (a < 0) == (b < 0) else -quotient


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


def fold_int_constant(expression: ast.Expression) -> Optional[int]:
    """Evaluate an integer constant expression, or None if not constant.

    Handles literals, enum constants, unary ``- + ! ~``, all integer
    binary operators, short-circuit operators, the ternary operator, and
    ``sizeof(type)``.  Identifiers other than enum constants are not
    constant (we do not chase ``const`` variables).
    """
    if isinstance(expression, (ast.IntLiteral, ast.CharLiteral)):
        return expression.value
    if isinstance(expression, ast.Identifier):
        if expression.binding == "enum-constant":
            return expression.constant_value
        return None
    if isinstance(expression, ast.UnaryOp):
        inner = fold_int_constant(expression.operand)
        if inner is None:
            return None
        if expression.op == "-":
            return -inner
        if expression.op == "+":
            return inner
        if expression.op == "!":
            return int(inner == 0)
        if expression.op == "~":
            return ~inner
        return None
    if isinstance(expression, ast.BinaryOp):
        left = fold_int_constant(expression.left)
        right = fold_int_constant(expression.right)
        if left is None or right is None:
            return None
        if expression.op == "/":
            return None if right == 0 else _c_div(left, right)
        if expression.op == "%":
            return None if right == 0 else _c_mod(left, right)
        handler = _INT_BINARY.get(expression.op)
        if handler is None:
            return None
        return handler(left, right)
    if isinstance(expression, ast.LogicalOp):
        left = fold_int_constant(expression.left)
        if left is None:
            return None
        if expression.op == "&&":
            if left == 0:
                return 0
            right = fold_int_constant(expression.right)
            return None if right is None else int(right != 0)
        if left != 0:
            return 1
        right = fold_int_constant(expression.right)
        return None if right is None else int(right != 0)
    if isinstance(expression, ast.Conditional):
        condition = fold_int_constant(expression.condition)
        if condition is None:
            return None
        branch = (
            expression.then_expr if condition != 0 else expression.else_expr
        )
        return fold_int_constant(branch)
    if isinstance(expression, ast.SizeofType):
        try:
            return expression.queried_type.sizeof()
        except ValueError:
            return None
    if isinstance(expression, ast.SizeofExpr):
        ctype = expression.operand.ctype
        if ctype is None:
            return None
        try:
            return ctype.sizeof()
        except ValueError:
            return None
    if isinstance(expression, ast.Cast):
        if expression.target_type.is_integer:
            return fold_int_constant(expression.operand)
        return None
    if isinstance(expression, ast.Comma):
        if not expression.parts:
            return None
        return fold_int_constant(expression.parts[-1])
    return None


def fold_condition(expression: ast.Expression) -> Optional[bool]:
    """If the branch condition is statically constant, return its truth.

    Returns ``True``/``False`` for a constant condition, ``None`` when
    the direction depends on run-time values.  Float literals count as
    constants too (``while (1.0)`` is constant).
    """
    if isinstance(expression, ast.FloatLiteral):
        return expression.value != 0.0
    value = fold_int_constant(expression)
    if value is None:
        return None
    return value != 0
