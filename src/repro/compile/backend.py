"""The compiled backend: machine subclass, linker, backend selection.

``CompiledMachine`` is a drop-in :class:`~repro.interp.machine.Machine`
whose ``call_user`` dispatches to generated closures (see
:mod:`repro.compile.lower`).  Everything else — memory, libc, argv
setup, startup initialization, the profile object — is inherited, so
compiled and interpreted frames interoperate freely on one machine:
functions the lowerer cannot compile simply keep taking the inherited
(interpreter) path, and libc callbacks such as ``qsort`` comparators
re-enter through the same virtual dispatch.

Linking is lazy and cached at three levels:

* per *call*: the first call to a function binds its factory (creating
  its profile sub-dicts at the same first-touch point the interpreter
  would — serialization preserves dict insertion order, so this is
  load-bearing for byte-identical profiles);
* per *process and program*: the generated module is exec'd once and
  memoized in a :class:`weakref.WeakKeyDictionary`;
* per *machine fleet*: the generated source and marshal'd code object
  persist in the content-addressed codegen cache
  (:mod:`repro.compile.cache`), so parallel workers and later runs
  skip lowering entirely.
"""

from __future__ import annotations

import os
from typing import Optional
from weakref import WeakKeyDictionary

from repro.frontend import ast_nodes as ast
from repro.frontend import ctypes as ct
from repro.interp.errors import InterpreterError
from repro.interp.machine import ExecutionResult, Machine
from repro.interp.values import AggregateValue
from repro.obs import incr, span
from repro.profiles.profile import Profile
from repro.program import Program

from repro.compile.cache import (
    codegen_cache_enabled,
    codegen_cache_key,
    load_cached_code,
    store_code,
)

#: Recognized backend names, in documentation order.
BACKENDS = ("interp", "compiled")

#: The default execution backend.  The interpreter stays available as
#: the differential oracle (``--backend interp`` / ``REPRO_BACKEND``).
DEFAULT_BACKEND = "compiled"

_BACKEND_ENV = "REPRO_BACKEND"


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The backend to use: explicit argument > ``REPRO_BACKEND`` >
    :data:`DEFAULT_BACKEND`.  Raises ValueError on unknown names."""
    choice = explicit or os.environ.get(_BACKEND_ENV) or DEFAULT_BACKEND
    choice = choice.strip().lower()
    if choice not in BACKENDS:
        raise ValueError(
            f"unknown backend {choice!r} (expected one of "
            f"{', '.join(BACKENDS)})"
        )
    return choice


def machine_class(backend: Optional[str] = None):
    """The :class:`Machine` subclass implementing ``backend``."""
    return (
        CompiledMachine if resolve_backend(backend) == "compiled" else Machine
    )


def run_program_backend(
    program: Program,
    stdin: str = "",
    argv: tuple[str, ...] = (),
    fuel: int = 200_000_000,
    input_name: str = "",
    backend: Optional[str] = None,
) -> ExecutionResult:
    """Backend-aware counterpart of :func:`repro.interp.run_program`."""
    profile = Profile(program.name, input_name)
    machine = machine_class(backend)(
        program, stdin=stdin, argv=argv, fuel=fuel, profile=profile
    )
    return machine.run()


class _CompiledModule:
    """One program's exec'd generated module."""

    __slots__ = ("factories", "fallback", "node_index")

    def __init__(self, factories, fallback, node_index):
        self.factories = factories
        self.fallback = fallback
        self.node_index = node_index


_MODULE_MEMO: "WeakKeyDictionary[Program, _CompiledModule]" = (
    WeakKeyDictionary()
)


def _node_index(program: Program) -> dict[int, ast.Node]:
    index: dict[int, ast.Node] = {}
    for function in program.unit.functions:
        for node in function.walk():
            index[node.node_id] = node
    return index


def compile_program(program: Program) -> _CompiledModule:
    """Lower, compile, and exec ``program``'s generated module.

    Memoized per process; the codegen cache makes later processes (and
    later runs) skip lowering and parsing, loading the marshal'd code
    object instead.
    """
    module = _MODULE_MEMO.get(program)
    if module is not None:
        return module
    with span("compile.program", program=program.name):
        code = None
        cache_on = codegen_cache_enabled()
        key = codegen_cache_key(program.source) if cache_on else ""
        if cache_on:
            code = load_cached_code(key)
        if code is None:
            from repro.compile.lower import lower_program

            with span("compile.lower", program=program.name):
                lowered = lower_program(program)
            incr("compile.source_bytes", len(lowered.source))
            code = compile(
                lowered.source,
                f"<repro-codegen {program.name}>",
                "exec",
            )
            if cache_on:
                store_code(key, lowered.source, code)
        namespace: dict[str, object] = {}
        exec(code, namespace)
        module = _CompiledModule(
            factories=namespace["FACTORIES"],
            fallback=namespace["FALLBACK"],
            node_index=_node_index(program),
        )
    incr("compile.functions", len(module.factories))
    incr("compile.fallback_functions", len(module.fallback))
    _MODULE_MEMO[program] = module
    return module


class CompiledMachine(Machine):
    """A machine whose user-function calls run generated code.

    Per-function fallback: functions absent from the generated module's
    ``FACTORIES`` (recorded in ``FALLBACK`` with the reason) take the
    inherited interpreter path, as does any call carrying an aggregate
    argument — the interpreter raises the exact diagnostic.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._closures: dict[str, object] = {}
        self._module: Optional[_CompiledModule] = None
        #: name -> (expected arg count, arity-exempt K&R style).
        self._arity: dict[str, tuple[int, bool]] = {}
        self._return_types: dict[str, ct.CType] = {}
        #: Aggregate arguments can only originate from interpreted
        #: frames; skip the per-call scan when nothing falls back.
        self._check_aggregates = True

    # -- dispatch ------------------------------------------------------

    def call_user(self, name, arguments, location):
        closure = self._closures.get(name)
        if closure is None:
            return self._call_slow(name, arguments, location)
        if self._depth >= self._max_call_depth:
            raise InterpreterError(
                f"call depth limit exceeded calling {name!r}", location
            )
        expected, lax = self._arity[name]
        if len(arguments) != expected and not lax:
            raise InterpreterError(
                f"{name} expects {expected} arguments, got "
                f"{len(arguments)}",
                location,
            )
        if self._check_aggregates:
            for value, _value_type in arguments:
                if isinstance(value, AggregateValue):
                    # Compiled functions only have scalar parameters;
                    # let the interpreter raise its exact error.
                    return super().call_user(name, arguments, location)
        self._depth += 1
        try:
            return closure(arguments), self._return_types[name]
        finally:
            self._depth -= 1

    def _call_slow(self, name, arguments, location):
        self._initialize()
        module = self._module
        if module is None:
            module = self._module = compile_program(self.program)
            self._check_aggregates = bool(module.fallback)
        factory = module.factories.get(name)
        if factory is None:
            # Fallback or undefined function: the interpreter supplies
            # the exact semantics (and the exact error for the latter).
            return super().call_user(name, arguments, location)
        # Bind at first call, not at link time: the factory preamble
        # touches this function's profile sub-dicts, and first-touch
        # order is what keeps profiles byte-identical.
        self._closures[name] = factory(self, module.node_index)
        definition = self._function_info[name].definition
        parameters = definition.ftype.parameters
        self._arity[name] = (
            len(parameters),
            definition.ftype.unspecified and not parameters,
        )
        self._return_types[name] = definition.ftype.return_type
        return self.call_user(name, arguments, location)

    # -- services for generated code ----------------------------------

    def compiled_builtin(self, name, arguments, call):
        """Builtin call entry point for generated closures; mirrors the
        builtin arm of ``execute_call`` (libc counter, call-site
        profile event, dispatch)."""
        from repro.interp.libc import call_builtin

        self._libc_calls += 1
        self.profile.record_call(call.node_id, name)
        return call_builtin(self, name, list(arguments), call)[0]
