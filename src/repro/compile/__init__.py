"""The compiled execution backend.

This package lowers the interpreter's flattened block plans (see
:func:`repro.interp.machine.block_plan`) to generated Python source —
one closure per C function, dispatch-free code with profile counters as
plain dict increments and register-allocated scalars as Python locals —
then ``compile()``s and caches the result in a content-addressed
codegen cache alongside the profile and analysis caches.

The contract is *byte-identical profiles*: a compiled run must produce
exactly the same :class:`~repro.profiles.profile.Profile` (including
dict insertion order, which the serializer preserves), the same stdout,
and the same exit status as the interpreter.  Functions using
constructs the lowerer does not handle (struct-by-value, mixed-type
ternaries, statically-detectable faults) fall back to the interpreter
per function; both kinds of frame interoperate through the machine's
shared ``call_user`` dispatch, memory, and libc.

See DESIGN.md §12 for the lowering strategy and the parity argument.
"""

from __future__ import annotations

#: Version of the lowering scheme.  Bump whenever generated code for
#: the same source would change (new lowering rules, changed runtime
#: helpers, changed factory protocol); stale codegen cache entries are
#: invalidated exactly like ``INTERP_VERSION`` invalidates profiles.
COMPILE_VERSION = 1

from repro.compile.backend import (  # noqa: E402
    BACKENDS,
    DEFAULT_BACKEND,
    CompiledMachine,
    compile_program,
    machine_class,
    resolve_backend,
    run_program_backend,
)

__all__ = [
    "BACKENDS",
    "COMPILE_VERSION",
    "DEFAULT_BACKEND",
    "CompiledMachine",
    "compile_program",
    "machine_class",
    "resolve_backend",
    "run_program_backend",
]
