"""Content-addressed codegen cache for the compiled backend.

Lowering a large program to Python and ``compile()``-ing it costs real
time (tens of milliseconds for suite programs, more for suite-XL
giants), and every worker process in the profiling fan-out would
otherwise pay it again.  This cache persists both artifacts per
program:

    <cache dir>/
        <key>.py        # the generated Python source (debuggable)
        <key>.code      # marshal of the compiled code object

``<key>`` is a SHA-256 digest over the compile-scheme version
(:data:`repro.compile.COMPILE_VERSION`), the interpreter semantics
version (``INTERP_VERSION`` — lowering mirrors interpreter semantics,
so an interpreter change invalidates codegen too), the package
version, the Python marshal tag (``sys.implementation.cache_tag`` —
marshal blobs are interpreter-build specific), and the program's full
C source.  Bumping ``COMPILE_VERSION`` therefore invalidates stale
codegen exactly like ``INTERP_VERSION`` invalidates stale profiles.

Environment knobs mirror the profile cache:

* ``REPRO_CODEGEN_CACHE_DIR`` — directory (default:
  ``$XDG_CACHE_HOME/repro/codegen`` or ``~/.cache/repro/codegen``).
* ``REPRO_CODEGEN_CACHE=0`` — disable persistence (in-process
  memoization still applies).

Writes are atomic (tempfile + ``os.replace``): parallel workers race
benignly on identical bytes.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import sys
import tempfile
from typing import Optional

import repro
from repro.interp import INTERP_VERSION
from repro.obs import incr

_FALSEY = {"0", "no", "off", "false", ""}


def codegen_cache_enabled() -> bool:
    """Whether the persistent codegen cache is on."""
    value = os.environ.get("REPRO_CODEGEN_CACHE", "1")
    return value.strip().lower() not in _FALSEY


def codegen_cache_dir() -> str:
    """The codegen cache directory (not necessarily created yet)."""
    explicit = os.environ.get("REPRO_CODEGEN_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "codegen")


def codegen_cache_key(source: str) -> str:
    """Content hash identifying one program's generated code."""
    from repro.compile import COMPILE_VERSION

    hasher = hashlib.sha256()
    for part in (
        f"compile={COMPILE_VERSION}",
        f"interp={INTERP_VERSION}",
        f"package={repro.__version__}",
        f"pytag={sys.implementation.cache_tag}",
        source,
    ):
        encoded = part.encode("utf-8")
        hasher.update(str(len(encoded)).encode("ascii"))
        hasher.update(b":")
        hasher.update(encoded)
    return hasher.hexdigest()


def _source_path(key: str, directory: str) -> str:
    return os.path.join(directory, f"{key}.py")


def _code_path(key: str, directory: str) -> str:
    return os.path.join(directory, f"{key}.code")


def load_cached_code(key: str, directory: Optional[str] = None):
    """The cached code object for ``key``, or None on a miss.

    Prefers the marshal blob (no recompile); falls back to compiling
    the stored source.  Corrupt entries count as misses and are
    overwritten by the next store.
    """
    directory = directory or codegen_cache_dir()
    try:
        with open(_code_path(key, directory), "rb") as handle:
            blob = handle.read()
        code = marshal.loads(blob)
        if not isinstance(code, type((lambda: 0).__code__)):
            raise ValueError("not a code object")
    except (OSError, ValueError, EOFError, TypeError):
        code = None
    if code is None:
        try:
            with open(_source_path(key, directory), encoding="utf-8") as handle:
                text = handle.read()
            code = compile(text, f"<repro-codegen {key[:16]}>", "exec")
            blob = b""
        except (OSError, SyntaxError, ValueError):
            incr("compile.cache.misses")
            return None
    incr("compile.cache.hits")
    incr("compile.cache.bytes_read", len(blob))
    return code


def _atomic_write(path: str, payload: bytes, directory: str, key: str) -> None:
    fd, temp_path = tempfile.mkstemp(
        prefix=f".{key[:16]}-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def store_code(
    key: str, source: str, code, directory: Optional[str] = None
) -> None:
    """Atomically persist generated source + marshal'd code object."""
    directory = directory or codegen_cache_dir()
    os.makedirs(directory, exist_ok=True)
    source_bytes = source.encode("utf-8")
    blob = marshal.dumps(code)
    incr("compile.cache.stores")
    incr("compile.cache.bytes_written", len(source_bytes) + len(blob))
    _atomic_write(_source_path(key, directory), source_bytes, directory, key)
    _atomic_write(_code_path(key, directory), blob, directory, key)


def codegen_cache_info(directory: Optional[str] = None) -> dict[str, object]:
    """Summary of the codegen cache (counts ``.py`` + ``.code`` files)."""
    from repro.profiles.cache import scan_cache_entries

    directory = directory or codegen_cache_dir()
    summary = scan_cache_entries(directory, suffixes=(".py", ".code"))
    summary["enabled"] = codegen_cache_enabled()
    return summary


def clear_codegen_cache(directory: Optional[str] = None) -> int:
    """Delete every codegen cache entry; returns how many were removed."""
    directory = directory or codegen_cache_dir()
    removed = 0
    if not os.path.isdir(directory):
        return 0
    for name in os.listdir(directory):
        if not name.endswith((".py", ".code", ".tmp")):
            continue
        try:
            os.unlink(os.path.join(directory, name))
            removed += 1
        except OSError:
            pass
    return removed
