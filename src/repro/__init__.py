"""repro: a reproduction of "Accurate Static Estimators for Program
Optimization" (Wagner, Maverick, Graham, Harrison; PLDI 1994).

The public API centres on :class:`~repro.program.Program` (compile C
source to AST + CFGs + call graph), the estimators in
:mod:`repro.estimators`, the profiling interpreter in
:mod:`repro.interp`, and Wall's weight-matching metric in
:mod:`repro.metrics`.  The paper's full evaluation is reproducible via
:mod:`repro.experiments` (or ``python -m repro run all``).
"""

from repro.program import Program

__version__ = "1.1.0"

__all__ = ["Program", "__version__"]
