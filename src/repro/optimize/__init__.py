"""Selective optimization: the paper's Figure 10 experiment."""

from repro.optimize.costmodel import (
    DEFAULT_OPTIMIZED_FACTOR,
    block_instruction_weights,
    function_costs,
    simulated_runtime,
)
from repro.optimize.layout import (
    chain_blocks,
    evaluate_layout_strategies,
    fallthrough_fraction,
    layout_from_estimates,
    layout_from_profile,
    program_fallthrough_fraction,
)
from repro.optimize.selective import (
    SelectiveSweep,
    ranking_from_estimate,
    ranking_from_profile,
    sweep_selective_optimization,
)

__all__ = [
    "DEFAULT_OPTIMIZED_FACTOR",
    "chain_blocks",
    "evaluate_layout_strategies",
    "fallthrough_fraction",
    "layout_from_estimates",
    "layout_from_profile",
    "program_fallthrough_fraction",
    "SelectiveSweep",
    "block_instruction_weights",
    "function_costs",
    "ranking_from_estimate",
    "ranking_from_profile",
    "simulated_runtime",
    "sweep_selective_optimization",
]
