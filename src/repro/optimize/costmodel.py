"""Cost model for the selective-optimization experiment (Figure 10).

The paper timed real binaries with different subsets of functions
compiled ``-O2``.  We simulate: a run's cost is the sum over executed
blocks of an instruction weight (1 per statement plus 1 for the
terminator), and optimizing a function multiplies its contribution by a
constant speed factor.  The *shape* of Figure 10 — monotone improvement
whose knee depends on how well the ranking found the hot functions —
depends only on the per-function cost distribution, which the model
preserves exactly (it is measured, not estimated).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.profiles.profile import Profile
from repro.program import Program

#: Cost multiplier for an optimized function (≈ the 1.8x speedup of
#: early-90s -O2 on integer codes).
DEFAULT_OPTIMIZED_FACTOR = 0.55


def block_instruction_weights(
    program: Program,
) -> dict[str, dict[int, float]]:
    """Instruction weight of every block: statements + terminator."""
    weights: dict[str, dict[int, float]] = {}
    for name, cfg in program.cfgs.items():
        weights[name] = {
            block.block_id: 1.0 + len(block.statements) for block in cfg
        }
    return weights


def function_costs(
    program: Program, profile: Profile
) -> dict[str, float]:
    """Unoptimized cost contributed by each function in ``profile``."""
    weights = block_instruction_weights(program)
    costs: dict[str, float] = {}
    for name in program.function_names:
        blocks = profile.block_counts.get(name, {})
        function_weights = weights[name]
        costs[name] = sum(
            count * function_weights.get(block_id, 1.0)
            for block_id, count in blocks.items()
        )
    return costs


def simulated_runtime(
    costs: Mapping[str, float],
    optimized: Iterable[str] = (),
    optimized_factor: float = DEFAULT_OPTIMIZED_FACTOR,
) -> float:
    """Total cost with the given functions optimized."""
    optimized_set = set(optimized)
    total = 0.0
    for name, cost in costs.items():
        factor = optimized_factor if name in optimized_set else 1.0
        total += cost * factor
    return total
