"""Selective optimization sweeps (paper §6, Figure 10).

Given a ranking of functions (from a static estimate or a profile),
optimize the top ``k`` for increasing ``k`` and report the simulated
speedup on an evaluation input the rankings never saw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.optimize.costmodel import (
    DEFAULT_OPTIMIZED_FACTOR,
    function_costs,
    simulated_runtime,
)
from repro.profiles.profile import Profile
from repro.program import Program


@dataclass
class SelectiveSweep:
    """One ranking's sweep: speedups at each optimized-count step."""

    ranking_name: str
    ordered_functions: list[str]
    counts: list[int]
    speedups: list[float]

    def speedup_at(self, count: int) -> float:
        return self.speedups[self.counts.index(count)]


def ranking_from_estimate(estimate: Mapping[str, float]) -> list[str]:
    """Function names ordered by decreasing estimated invocations."""
    return sorted(estimate, key=lambda name: (-estimate[name], name))


def ranking_from_profile(
    program: Program, profile: Profile
) -> list[str]:
    """Function names ordered by measured entry counts."""
    entries = {
        name: profile.entry_count(name) for name in program.function_names
    }
    return ranking_from_estimate(entries)


def sweep_selective_optimization(
    program: Program,
    evaluation_profile: Profile,
    ranking: Sequence[str],
    ranking_name: str,
    counts: Sequence[int] = (0, 1, 2, 3, 4, 5, 6),
    include_all: bool = True,
    optimized_factor: float = DEFAULT_OPTIMIZED_FACTOR,
) -> SelectiveSweep:
    """Measure simulated speedup as the top-k of ``ranking`` are
    optimized, evaluated on ``evaluation_profile``."""
    costs = function_costs(program, evaluation_profile)
    baseline = simulated_runtime(costs, (), optimized_factor)
    steps = list(counts)
    if include_all and len(program.function_names) not in steps:
        steps.append(len(program.function_names))
    speedups: list[float] = []
    for count in steps:
        chosen = list(ranking[:count])
        runtime = simulated_runtime(costs, chosen, optimized_factor)
        speedups.append(baseline / runtime if runtime > 0 else 1.0)
    return SelectiveSweep(
        ranking_name=ranking_name,
        ordered_functions=list(ranking),
        counts=steps,
        speedups=speedups,
    )
