"""Basic-block layout driven by frequency estimates.

One of the paper's motivating optimizations is "code layout for
instruction cache packing" (McFarling, their [8]).  This module
implements the classic Pettis–Hansen bottom-up chaining algorithm:

1. treat every block as a singleton chain;
2. visit arcs in decreasing weight; when an arc runs from the tail of
   one chain to the head of another, merge the chains (making the arc
   a fall-through);
3. order the finished chains by the weight of their connections,
   starting from the chain containing the entry block.

The figure of merit is the **fall-through fraction**: the share of
dynamic control transfers that reach the next block in layout order
(no jump needed, and the i-cache line stays hot).  Arc weights can come
from a real profile or from the static arc estimates of
:mod:`repro.estimators.arcs` — comparing the two layouts *evaluated on
real executions* measures exactly what the paper's intro promises
static estimates are good for.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cfg.block import ControlFlowGraph
from repro.profiles.profile import Profile
from repro.program import Program

Arc = tuple[int, int]


def chain_blocks(
    cfg: ControlFlowGraph, arc_weights: Mapping[Arc, float]
) -> list[int]:
    """Pettis-Hansen bottom-up chaining; returns blocks in layout order.

    The entry block always comes first (its chain is emitted first);
    every block of the CFG appears exactly once.
    """
    chain_of: dict[int, list[int]] = {
        block_id: [block_id] for block_id in cfg.blocks
    }
    # Sort arcs heaviest-first; deterministic tie-break on the arc.
    ordered_arcs = sorted(
        (arc for arc in cfg.edges()),
        key=lambda arc: (-arc_weights.get(arc, 0.0), arc),
    )
    for source, target in ordered_arcs:
        if source == target:
            continue  # Self-loop: can never be a fall-through.
        source_chain = chain_of[source]
        target_chain = chain_of[target]
        if source_chain is target_chain:
            continue
        if source_chain[-1] != source or target_chain[0] != target:
            continue  # Not tail-to-head: merging gains nothing.
        source_chain.extend(target_chain)
        for member in target_chain:
            chain_of[member] = source_chain

    # Collect distinct chains; entry's chain first, the rest by their
    # heaviest inbound connection from already-placed chains, falling
    # back to id order (Pettis-Hansen's chain-ordering step, simplified
    # to a stable greedy).
    chains: list[list[int]] = []
    seen: set[int] = set()
    for block_id in [cfg.entry_id] + sorted(cfg.blocks):
        chain = chain_of[block_id]
        if id(chain) not in seen:
            seen.add(id(chain))
            chains.append(chain)
    if len(chains) > 1:
        placed = chains[0]
        remaining = chains[1:]
        ordered = [placed]
        placed_blocks = set(placed)
        while remaining:
            def connection_weight(chain: list[int]) -> float:
                return sum(
                    arc_weights.get((source, target), 0.0)
                    for source, target in cfg.edges()
                    if source in placed_blocks and target in chain
                )

            best = max(
                range(len(remaining)),
                key=lambda i: (
                    connection_weight(remaining[i]),
                    -remaining[i][0],
                ),
            )
            chain = remaining.pop(best)
            ordered.append(chain)
            placed_blocks.update(chain)
        chains = ordered
    return [block_id for chain in chains for block_id in chain]


def fallthrough_fraction(
    layout: list[int], dynamic_arcs: Mapping[Arc, float]
) -> float:
    """Share of dynamic transfers that fall through under ``layout``."""
    successor_in_layout = {
        block_id: layout[index + 1]
        for index, block_id in enumerate(layout[:-1])
    }
    total = 0.0
    fallthrough = 0.0
    for (source, target), count in dynamic_arcs.items():
        total += count
        if successor_in_layout.get(source) == target:
            fallthrough += count
    return fallthrough / total if total else 1.0


def layout_from_estimates(
    program: Program,
    function_name: str,
    block_estimator: str = "markov",
) -> list[int]:
    """Layout one function's blocks from purely static arc estimates."""
    from repro.estimators.arcs import estimate_arc_frequencies

    arcs = estimate_arc_frequencies(
        program, function_name, block_estimator
    )
    return chain_blocks(program.cfg(function_name), arcs)


def layout_from_profile(
    program: Program, function_name: str, profile: Profile
) -> list[int]:
    """Layout one function's blocks from measured arc counts."""
    arcs = profile.arc_counts.get(function_name, {})
    return chain_blocks(program.cfg(function_name), arcs)


def original_layout(program: Program, function_name: str) -> list[int]:
    """The untouched source order (block ids ascending)."""
    return sorted(program.cfg(function_name).blocks)


def program_fallthrough_fraction(
    program: Program,
    layouts: Mapping[str, list[int]],
    profile: Profile,
) -> float:
    """Whole-program fall-through fraction of per-function layouts,
    weighted by each function's dynamic transfer volume."""
    total = 0.0
    fallthrough = 0.0
    for name, layout in layouts.items():
        arcs = profile.arc_counts.get(name, {})
        volume = sum(arcs.values())
        if volume == 0:
            continue
        total += volume
        fallthrough += fallthrough_fraction(layout, arcs) * volume
    return fallthrough / total if total else 1.0


def evaluate_layout_strategies(
    program: Program,
    training_profile: Optional[Profile],
    evaluation_profile: Profile,
    block_estimator: str = "markov",
) -> dict[str, float]:
    """Fall-through fractions on ``evaluation_profile`` for three
    strategies: source order, static-estimate layout, and (when a
    training profile is given) profile-guided layout."""
    names = program.function_names
    strategies: dict[str, dict[str, list[int]]] = {
        "original": {
            name: original_layout(program, name) for name in names
        },
        "estimate": {
            name: layout_from_estimates(program, name, block_estimator)
            for name in names
        },
    }
    if training_profile is not None:
        strategies["profile"] = {
            name: layout_from_profile(program, name, training_profile)
            for name in names
        }
    return {
        strategy: program_fallthrough_fraction(
            program, layouts, evaluation_profile
        )
        for strategy, layouts in strategies.items()
    }
