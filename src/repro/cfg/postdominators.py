"""Post-dominator computation.

The post-dominator relation ("every path from B to exit passes through
P") drives the Ball–Larus *call* and *loop-exit* heuristics: a branch
successor that contains a call and does **not** post-dominate the
branch is unlikely to be taken.  Computed as dominators of the reverse
CFG with a virtual exit node joining all returns.
"""

from __future__ import annotations

from repro.cfg.block import ControlFlowGraph

#: Identifier of the virtual exit node in the post-dominator maps.
VIRTUAL_EXIT = -1


def post_dominators(graph: ControlFlowGraph) -> dict[int, set[int]]:
    """Map each reachable block to the set of blocks post-dominating it
    (including itself; :data:`VIRTUAL_EXIT` is omitted from sets).

    Blocks that cannot reach any exit (infinite loops) post-dominate
    nothing beyond themselves and the loop members that trap them.
    Iterative dataflow: small CFGs make O(n^2) perfectly fine.
    """
    blocks = set(graph.blocks)
    exits = set(graph.exit_ids())
    successors = {
        block_id: set(graph.successors(block_id)) for block_id in blocks
    }
    # Initialize: exits post-dominated by themselves; others by all.
    pdom: dict[int, set[int]] = {}
    for block_id in blocks:
        if block_id in exits:
            pdom[block_id] = {block_id}
        else:
            pdom[block_id] = set(blocks)
    changed = True
    while changed:
        changed = False
        for block_id in blocks:
            if block_id in exits:
                continue
            succ = successors[block_id]
            if succ:
                meet = set.intersection(
                    *(pdom[s] for s in succ)
                )
            else:  # pragma: no cover - non-exit blocks have successors
                meet = set()
            updated = meet | {block_id}
            if updated != pdom[block_id]:
                pdom[block_id] = updated
                changed = True
    return pdom


def post_dominates(
    pdom: dict[int, set[int]], candidate: int, block_id: int
) -> bool:
    """True when ``candidate`` post-dominates ``block_id``."""
    return candidate in pdom.get(block_id, set())
