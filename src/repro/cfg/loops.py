"""Natural-loop detection over the CFG.

A back edge is an edge ``t -> h`` where ``h`` dominates ``t``; the
natural loop of that edge is ``h`` plus every block that can reach ``t``
without passing through ``h``.  Loops with the same header are merged.
Nesting depth per block feeds diagnostics and the structural tests that
check the AST-level loop estimator against real CFG structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.block import ControlFlowGraph
from repro.cfg.dominators import dominates, immediate_dominators


@dataclass
class NaturalLoop:
    """One natural loop: header block, members (including header), and
    the back edges ``(tail, header)`` that define it."""

    header: int
    body: set[int] = field(default_factory=set)
    back_edges: list[tuple[int, int]] = field(default_factory=list)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self.body


def find_back_edges(graph: ControlFlowGraph) -> list[tuple[int, int]]:
    """All edges ``(tail, header)`` where header dominates tail."""
    idom = immediate_dominators(graph)
    back_edges: list[tuple[int, int]] = []
    for source, target in graph.edges():
        if source in idom and target in idom and dominates(
            idom, target, source
        ):
            back_edges.append((source, target))
    return back_edges


def find_natural_loops(graph: ControlFlowGraph) -> list[NaturalLoop]:
    """Natural loops, merged per header, sorted by header id."""
    predecessors = graph.predecessor_map()
    loops: dict[int, NaturalLoop] = {}
    for tail, header in find_back_edges(graph):
        loop = loops.setdefault(header, NaturalLoop(header, {header}))
        loop.back_edges.append((tail, header))
        # Walk backwards from the tail, stopping at the header.
        stack = [tail]
        while stack:
            block_id = stack.pop()
            if block_id in loop.body:
                continue
            loop.body.add(block_id)
            stack.extend(predecessors[block_id])
    return [loops[header] for header in sorted(loops)]


def loop_nesting_depth(graph: ControlFlowGraph) -> dict[int, int]:
    """Map block id -> number of natural loops containing it."""
    depth = {block_id: 0 for block_id in graph.blocks}
    for loop in find_natural_loops(graph):
        for block_id in loop.body:
            depth[block_id] += 1
    return depth
