"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

Used by natural-loop detection and available to clients that want to
reason about control dependence.  CFGs here are small (tens of blocks),
so the simple iterative algorithm is the right tool.
"""

from __future__ import annotations

from repro.cfg.block import ControlFlowGraph


def reverse_postorder(graph: ControlFlowGraph) -> list[int]:
    """Block ids in reverse postorder from the entry."""
    visited: set[int] = set()
    order: list[int] = []

    def visit(block_id: int) -> None:
        # Iterative DFS; recursion depth could exceed limits on long
        # chains of blocks.
        stack: list[tuple[int, int]] = [(block_id, 0)]
        while stack:
            current, child_index = stack.pop()
            if child_index == 0:
                if current in visited:
                    continue
                visited.add(current)
            successors = graph.successors(current)
            if child_index < len(successors):
                stack.append((current, child_index + 1))
                successor = successors[child_index]
                if successor not in visited:
                    stack.append((successor, 0))
            else:
                order.append(current)

    visit(graph.entry_id)
    order.reverse()
    return order


def immediate_dominators(graph: ControlFlowGraph) -> dict[int, int]:
    """Map each reachable block to its immediate dominator.

    The entry block maps to itself.
    """
    order = reverse_postorder(graph)
    position = {block_id: index for index, block_id in enumerate(order)}
    predecessors = graph.predecessor_map()
    idom: dict[int, int] = {graph.entry_id: graph.entry_id}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block_id in order:
            if block_id == graph.entry_id:
                continue
            candidates = [
                pred
                for pred in predecessors[block_id]
                if pred in idom and pred in position
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True
    return idom


def dominates(
    idom: dict[int, int], dominator: int, block_id: int
) -> bool:
    """True when ``dominator`` dominates ``block_id`` under ``idom``."""
    current = block_id
    while True:
        if current == dominator:
            return True
        parent = idom.get(current)
        if parent is None or parent == current:
            return current == dominator
        current = parent


def dominator_tree_children(idom: dict[int, int]) -> dict[int, list[int]]:
    """Invert the idom map into dominator-tree child lists."""
    children: dict[int, list[int]] = {block_id: [] for block_id in idom}
    for block_id, parent in idom.items():
        if block_id != parent:
            children[parent].append(block_id)
    for child_list in children.values():
        child_list.sort()
    return children
