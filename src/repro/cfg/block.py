"""Basic blocks, terminators, and the control-flow graph container.

Blocks hold straight-line statements; all control transfers live in the
block's *terminator*.  Conditional terminators keep a reference to the
AST construct they came from (``origin``) and a ``kind`` tag so the
branch-prediction heuristics can see the syntax that produced each CFG
branch — the paper's predictor works "at the level of the abstract
syntax and the C type system".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.frontend import ast_nodes as ast

#: Values a conditional terminator's ``kind`` may take.  ``loop`` marks
#: the controlling test of a while/for (exit test at the top),
#: ``do-loop`` the bottom test of a do-while, ``if`` an if statement,
#: ``logical-and``/``logical-or`` a decomposed short-circuit operand,
#: and ``ternary`` the test of a ``?:`` in condition position.
BRANCH_KINDS = (
    "if",
    "loop",
    "do-loop",
    "logical-and",
    "logical-or",
    "ternary",
)


class Terminator:
    """Base class for block terminators."""

    def successor_ids(self) -> list[int]:
        raise NotImplementedError


@dataclass
class Jump(Terminator):
    target: int = -1

    def successor_ids(self) -> list[int]:
        return [self.target]


@dataclass
class CondBranch(Terminator):
    """Two-way branch on ``condition``.

    ``origin`` is the AST statement or expression whose test this is
    (If, While, For, DoWhile, LogicalOp, Conditional); ``kind`` is one
    of :data:`BRANCH_KINDS`.
    """

    condition: ast.Expression = None  # type: ignore[assignment]
    true_target: int = -1
    false_target: int = -1
    origin: Optional[ast.Node] = None
    kind: str = "if"

    def successor_ids(self) -> list[int]:
        return [self.true_target, self.false_target]


@dataclass
class SwitchArm:
    values: tuple[int, ...]
    target: int


@dataclass
class SwitchBranch(Terminator):
    """Multi-way branch for ``switch``.  ``default_target`` receives
    control when no arm value matches (it is the join block when the
    switch has no ``default`` label)."""

    condition: ast.Expression = None  # type: ignore[assignment]
    arms: list[SwitchArm] = field(default_factory=list)
    default_target: int = -1
    origin: Optional[ast.Switch] = None

    def successor_ids(self) -> list[int]:
        targets = [arm.target for arm in self.arms]
        targets.append(self.default_target)
        return targets

    def case_label_count(self, target: int) -> int:
        """Number of case labels that lead to ``target`` (for the
        paper's label-weighted switch prediction)."""
        return sum(len(arm.values) for arm in self.arms if arm.target == target)


@dataclass
class ReturnTerm(Terminator):
    value: Optional[ast.Expression] = None
    origin: Optional[ast.Return] = None

    def successor_ids(self) -> list[int]:
        return []


@dataclass
class BasicBlock:
    """One basic block: label, straight-line statements, terminator."""

    block_id: int
    label: str = ""
    statements: list[ast.Statement] = field(default_factory=list)
    terminator: Terminator = field(default_factory=lambda: ReturnTerm())

    def successor_ids(self) -> list[int]:
        return self.terminator.successor_ids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.block_id}, {self.label!r})"


class ControlFlowGraph:
    """The CFG of one function."""

    def __init__(self, function_name: str):
        self.function_name = function_name
        self.blocks: dict[int, BasicBlock] = {}
        self.entry_id: int = -1
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction.

    def new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(self._next_id, label or f"B{self._next_id}")
        self.blocks[block.block_id] = block
        self._next_id += 1
        return block

    def remove_block(self, block_id: int) -> None:
        del self.blocks[block_id]

    # ------------------------------------------------------------------
    # Queries.

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def successors(self, block_id: int) -> list[int]:
        return self.blocks[block_id].successor_ids()

    def predecessor_map(self) -> dict[int, list[int]]:
        """block id -> list of predecessor ids (with multiplicity)."""
        predecessors: dict[int, list[int]] = {
            block_id: [] for block_id in self.blocks
        }
        for block in self:
            for successor in block.successor_ids():
                predecessors[successor].append(block.block_id)
        return predecessors

    def edges(self) -> list[tuple[int, int]]:
        """All (source, target) edges, deduplicated, in id order."""
        seen: set[tuple[int, int]] = set()
        result: list[tuple[int, int]] = []
        for block_id in sorted(self.blocks):
            for successor in self.blocks[block_id].successor_ids():
                edge = (block_id, successor)
                if edge not in seen:
                    seen.add(edge)
                    result.append(edge)
        return result

    def exit_ids(self) -> list[int]:
        return [
            block.block_id
            for block in self
            if isinstance(block.terminator, ReturnTerm)
        ]

    def reachable_ids(self) -> set[int]:
        """Blocks reachable from the entry."""
        seen: set[int] = set()
        stack = [self.entry_id]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            stack.extend(self.blocks[block_id].successor_ids())
        return seen

    def prune_unreachable(self) -> list[int]:
        """Drop blocks unreachable from entry; returns removed ids."""
        reachable = self.reachable_ids()
        removed = [bid for bid in self.blocks if bid not in reachable]
        for block_id in removed:
            self.remove_block(block_id)
        return removed

    def conditional_branches(self) -> list[tuple[BasicBlock, CondBranch]]:
        """All two-way branches, in block id order."""
        return [
            (block, block.terminator)
            for block in sorted(self, key=lambda b: b.block_id)
            if isinstance(block.terminator, CondBranch)
        ]

    def switch_branches(self) -> list[tuple[BasicBlock, SwitchBranch]]:
        return [
            (block, block.terminator)
            for block in sorted(self, key=lambda b: b.block_id)
            if isinstance(block.terminator, SwitchBranch)
        ]
