"""Control-flow graphs: blocks, construction, dominators, loops, DOT."""

from repro.cfg.block import (
    BasicBlock,
    CondBranch,
    ControlFlowGraph,
    Jump,
    ReturnTerm,
    SwitchArm,
    SwitchBranch,
    Terminator,
)
from repro.cfg.builder import CFGConstructionError, build_all_cfgs, build_cfg
from repro.cfg.dominators import immediate_dominators, reverse_postorder
from repro.cfg.dot import cfg_to_dot
from repro.cfg.postdominators import (
    VIRTUAL_EXIT,
    post_dominates,
    post_dominators,
)
from repro.cfg.loops import (
    NaturalLoop,
    find_back_edges,
    find_natural_loops,
    loop_nesting_depth,
)

__all__ = [
    "BasicBlock",
    "CFGConstructionError",
    "CondBranch",
    "ControlFlowGraph",
    "Jump",
    "NaturalLoop",
    "ReturnTerm",
    "SwitchArm",
    "SwitchBranch",
    "Terminator",
    "build_all_cfgs",
    "build_cfg",
    "cfg_to_dot",
    "find_back_edges",
    "find_natural_loops",
    "immediate_dominators",
    "loop_nesting_depth",
    "post_dominates",
    "post_dominators",
    "reverse_postorder",
    "VIRTUAL_EXIT",
]
