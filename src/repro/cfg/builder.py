"""Lowering from the AST to a control-flow graph.

The builder decomposes short-circuit operators *in condition position*
into separate blocks (so ``if (a && b)`` yields two conditional
branches, matching how the paper counts branches), threads
``break``/``continue``/``goto``/``return`` through explicit edges, and
lowers ``switch`` to a multi-way terminator with fall-through edges
between arms.

``&&``/``||``/``?:`` appearing in *value* position (e.g. ``x = a && b``)
stay inside expressions and are evaluated by the interpreter without
introducing blocks — the paper's analyses are AST-level and treat those
the same way.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.block import (
    BasicBlock,
    CondBranch,
    ControlFlowGraph,
    Jump,
    ReturnTerm,
    SwitchArm,
    SwitchBranch,
)
from repro.frontend import ast_nodes as ast
from repro.frontend.errors import FrontendError


class CFGConstructionError(FrontendError):
    """Raised for control-flow errors (e.g. goto to a missing label)."""


class CFGBuilder:
    """Builds the CFG of one function."""

    def __init__(self, function: ast.FunctionDef):
        self._function = function
        self._graph = ControlFlowGraph(function.name)
        self._current: Optional[BasicBlock] = None
        self._break_targets: list[int] = []
        self._continue_targets: list[int] = []
        self._label_blocks: dict[str, BasicBlock] = {}
        self._defined_labels: set[str] = set()

    def build(self) -> ControlFlowGraph:
        entry = self._graph.new_block("entry")
        self._graph.entry_id = entry.block_id
        self._current = entry
        self._compound(self._function.body)
        if self._current is not None:
            self._current.terminator = ReturnTerm(None)
        undefined = set(self._label_blocks) - self._defined_labels
        if undefined:
            raise CFGConstructionError(
                f"goto to undefined label(s): {sorted(undefined)}",
                self._function.location,
            )
        self._graph.prune_unreachable()
        _name_return_blocks(self._graph)
        return self._graph

    # ------------------------------------------------------------------
    # Block management.

    def _fresh(self, label: str) -> BasicBlock:
        return self._graph.new_block(label)

    def _append(self, statement: ast.Statement) -> None:
        if self._current is None:
            # Unreachable statement (e.g. after return): park it in a
            # dead block so side-effect-free analyses can still see it;
            # pruning removes it afterwards.
            self._current = self._fresh("dead")
        self._current.statements.append(statement)

    def _seal_with_jump(self, target_id: int) -> None:
        if self._current is not None:
            self._current.terminator = Jump(target_id)
            self._current = None

    # ------------------------------------------------------------------
    # Statements.

    def _compound(self, compound: ast.Compound) -> None:
        for item in compound.items:
            self._statement(item)

    def _statement(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.Compound):
            self._compound(statement)
        elif isinstance(statement, (ast.Declaration, ast.ExpressionStatement)):
            if (
                isinstance(statement, ast.ExpressionStatement)
                and statement.expression is None
            ):
                return
            self._append(statement)
        elif isinstance(statement, ast.If):
            self._if_statement(statement)
        elif isinstance(statement, ast.While):
            self._while_statement(statement)
        elif isinstance(statement, ast.DoWhile):
            self._do_while_statement(statement)
        elif isinstance(statement, ast.For):
            self._for_statement(statement)
        elif isinstance(statement, ast.Switch):
            self._switch_statement(statement)
        elif isinstance(statement, ast.Break):
            if not self._break_targets:
                raise CFGConstructionError(
                    "break outside loop or switch", statement.location
                )
            self._seal_with_jump(self._break_targets[-1])
        elif isinstance(statement, ast.Continue):
            if not self._continue_targets:
                raise CFGConstructionError(
                    "continue outside loop", statement.location
                )
            self._seal_with_jump(self._continue_targets[-1])
        elif isinstance(statement, ast.Return):
            if self._current is None:
                self._current = self._fresh("dead")
            self._current.terminator = ReturnTerm(statement.value, statement)
            self._current = None
        elif isinstance(statement, ast.Goto):
            self._seal_with_jump(self._label_block(statement.label).block_id)
        elif isinstance(statement, ast.LabeledStatement):
            self._labeled_statement(statement)
        else:  # pragma: no cover - grammar covers all statement forms
            raise CFGConstructionError(
                f"cannot lower statement {type(statement).__name__}",
                statement.location,
            )

    def _label_block(self, label: str) -> BasicBlock:
        if label not in self._label_blocks:
            self._label_blocks[label] = self._fresh(f"label.{label}")
        return self._label_blocks[label]

    def _labeled_statement(self, statement: ast.LabeledStatement) -> None:
        if statement.label in self._defined_labels:
            raise CFGConstructionError(
                f"duplicate label {statement.label!r}", statement.location
            )
        self._defined_labels.add(statement.label)
        block = self._label_block(statement.label)
        self._seal_with_jump(block.block_id)
        self._current = block
        self._statement(statement.statement)

    def _if_statement(self, statement: ast.If) -> None:
        then_block = self._fresh("if.then")
        join_block = self._fresh("if.join")
        if statement.else_branch is not None:
            else_block = self._fresh("if.else")
            false_id = else_block.block_id
        else:
            else_block = None
            false_id = join_block.block_id
        self._condition(
            statement.condition,
            then_block.block_id,
            false_id,
            origin=statement,
            kind="if",
        )
        self._current = then_block
        self._statement(statement.then_branch)
        self._seal_with_jump(join_block.block_id)
        if else_block is not None:
            self._current = else_block
            assert statement.else_branch is not None
            self._statement(statement.else_branch)
            self._seal_with_jump(join_block.block_id)
        self._current = join_block

    def _while_statement(self, statement: ast.While) -> None:
        header = self._fresh("while")
        body = self._fresh("while.body")
        join = self._fresh("while.join")
        self._seal_with_jump(header.block_id)
        self._current = header
        self._condition(
            statement.condition,
            body.block_id,
            join.block_id,
            origin=statement,
            kind="loop",
        )
        self._break_targets.append(join.block_id)
        self._continue_targets.append(header.block_id)
        self._current = body
        self._statement(statement.body)
        self._seal_with_jump(header.block_id)
        self._break_targets.pop()
        self._continue_targets.pop()
        self._current = join

    def _do_while_statement(self, statement: ast.DoWhile) -> None:
        body = self._fresh("do.body")
        test = self._fresh("do.test")
        join = self._fresh("do.join")
        self._seal_with_jump(body.block_id)
        self._break_targets.append(join.block_id)
        self._continue_targets.append(test.block_id)
        self._current = body
        self._statement(statement.body)
        self._seal_with_jump(test.block_id)
        self._break_targets.pop()
        self._continue_targets.pop()
        self._current = test
        self._condition(
            statement.condition,
            body.block_id,
            join.block_id,
            origin=statement,
            kind="do-loop",
        )
        self._current = join

    def _for_statement(self, statement: ast.For) -> None:
        if statement.init is not None:
            self._statement(statement.init)
        header = self._fresh("for")
        body = self._fresh("for.body")
        step = self._fresh("for.step")
        join = self._fresh("for.join")
        self._seal_with_jump(header.block_id)
        self._current = header
        if statement.condition is not None:
            self._condition(
                statement.condition,
                body.block_id,
                join.block_id,
                origin=statement,
                kind="loop",
            )
        else:
            self._seal_with_jump(body.block_id)
        self._break_targets.append(join.block_id)
        self._continue_targets.append(step.block_id)
        self._current = body
        self._statement(statement.body)
        self._seal_with_jump(step.block_id)
        self._break_targets.pop()
        self._continue_targets.pop()
        self._current = step
        if statement.step is not None:
            self._current.statements.append(
                ast.ExpressionStatement(
                    location=statement.step.location,
                    expression=statement.step,
                )
            )
        self._seal_with_jump(header.block_id)
        self._current = join

    def _switch_statement(self, statement: ast.Switch) -> None:
        if self._current is None:
            self._current = self._fresh("dead")
        join = self._fresh("switch.join")
        arm_blocks = [
            self._fresh(
                "switch.default" if case.is_default else "switch.case"
            )
            for case in statement.cases
        ]
        arms: list[SwitchArm] = []
        default_target = join.block_id
        for case, block in zip(statement.cases, arm_blocks):
            if case.is_default:
                default_target = block.block_id
            if case.values:
                arms.append(SwitchArm(tuple(case.values), block.block_id))
        self._current.terminator = SwitchBranch(
            condition=statement.condition,
            arms=arms,
            default_target=default_target,
            origin=statement,
        )
        self._current = None
        self._break_targets.append(join.block_id)
        for index, (case, block) in enumerate(
            zip(statement.cases, arm_blocks)
        ):
            self._current = block
            for item in case.body:
                self._statement(item)
            # Fall through into the next arm, or out of the switch.
            if index + 1 < len(arm_blocks):
                self._seal_with_jump(arm_blocks[index + 1].block_id)
            else:
                self._seal_with_jump(join.block_id)
        self._break_targets.pop()
        self._current = join

    # ------------------------------------------------------------------
    # Conditions (with short-circuit decomposition).

    def _condition(
        self,
        expression: ast.Expression,
        true_id: int,
        false_id: int,
        origin: ast.Node,
        kind: str,
    ) -> None:
        """Terminate the current block(s) with branches implementing
        ``expression`` as a condition targeting ``true_id``/``false_id``."""
        if self._current is None:
            self._current = self._fresh("dead")
        if isinstance(expression, ast.LogicalOp):
            logical_kind = (
                "logical-and" if expression.op == "&&" else "logical-or"
            )
            rest = self._fresh("cond.rest")
            if expression.op == "&&":
                self._condition(
                    expression.left,
                    rest.block_id,
                    false_id,
                    origin,
                    kind if kind in ("loop", "do-loop") else logical_kind,
                )
            else:
                self._condition(
                    expression.left,
                    true_id,
                    rest.block_id,
                    origin,
                    kind if kind in ("loop", "do-loop") else logical_kind,
                )
            self._current = rest
            self._condition(
                expression.right, true_id, false_id, origin, logical_kind
            )
            return
        if isinstance(expression, ast.UnaryOp) and expression.op == "!":
            self._condition(
                expression.operand, false_id, true_id, origin, kind
            )
            return
        self._current.terminator = CondBranch(
            condition=expression,
            true_target=true_id,
            false_target=false_id,
            origin=origin,
            kind=kind,
        )
        self._current = None


def _name_return_blocks(graph: ControlFlowGraph) -> None:
    """Give return blocks the paper's ``return1``, ``return2``, ... names."""
    counter = 1
    for block in sorted(graph, key=lambda b: b.block_id):
        if isinstance(block.terminator, ReturnTerm):
            block.label = f"return{counter}"
            counter += 1


def build_cfg(function: ast.FunctionDef) -> ControlFlowGraph:
    """Build and return the CFG for ``function``."""
    return CFGBuilder(function).build()


def build_all_cfgs(
    unit: ast.TranslationUnit,
) -> dict[str, ControlFlowGraph]:
    """CFGs for every function in the translation unit, by name."""
    return {
        function.name: build_cfg(function) for function in unit.functions
    }
