"""Graphviz DOT rendering of CFGs, optionally annotated with
frequencies or probabilities (paper Figure 6 shows such a rendering)."""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cfg.block import (
    CondBranch,
    ControlFlowGraph,
    Jump,
    ReturnTerm,
    SwitchBranch,
)


def cfg_to_dot(
    graph: ControlFlowGraph,
    block_annotations: Optional[Mapping[int, str]] = None,
    edge_annotations: Optional[Mapping[tuple[int, int], str]] = None,
    block_styles: Optional[Mapping[int, str]] = None,
) -> str:
    """Render ``graph`` as DOT text.

    ``block_annotations`` adds a second label line per block (e.g. an
    estimated frequency); ``edge_annotations`` labels edges (e.g. branch
    probabilities); ``block_styles`` appends raw node attributes per
    block (e.g. ``style=filled, fillcolor="#ffd9d9"`` for the error
    heatmaps in :mod:`repro.attribution.heatmap`).
    """
    lines = [f'digraph "{graph.function_name}" {{', "  node [shape=box];"]
    for block_id in sorted(graph.blocks):
        block = graph.blocks[block_id]
        label = block.label
        if block_annotations and block_id in block_annotations:
            label = f"{label}\\n{block_annotations[block_id]}"
        shape = ""
        if block_id == graph.entry_id:
            shape = ", penwidth=2"
        if block_styles and block_id in block_styles:
            shape = f"{shape}, {block_styles[block_id]}"
        lines.append(f'  n{block_id} [label="{label}"{shape}];')
    for block_id in sorted(graph.blocks):
        block = graph.blocks[block_id]
        terminator = block.terminator
        if isinstance(terminator, Jump):
            lines.append(
                _edge(block_id, terminator.target, edge_annotations)
            )
        elif isinstance(terminator, CondBranch):
            lines.append(
                _edge(
                    block_id,
                    terminator.true_target,
                    edge_annotations,
                    fallback="T",
                )
            )
            lines.append(
                _edge(
                    block_id,
                    terminator.false_target,
                    edge_annotations,
                    fallback="F",
                )
            )
        elif isinstance(terminator, SwitchBranch):
            for arm in terminator.arms:
                values = ",".join(str(v) for v in arm.values)
                lines.append(
                    _edge(
                        block_id, arm.target, edge_annotations, fallback=values
                    )
                )
            lines.append(
                _edge(
                    block_id,
                    terminator.default_target,
                    edge_annotations,
                    fallback="default",
                )
            )
        elif isinstance(terminator, ReturnTerm):
            pass
    lines.append("}")
    return "\n".join(lines)


def _edge(
    source: int,
    target: int,
    annotations: Optional[Mapping[tuple[int, int], str]],
    fallback: str = "",
) -> str:
    label = fallback
    if annotations and (source, target) in annotations:
        label = annotations[(source, target)]
    suffix = f' [label="{label}"]' if label else ""
    return f"  n{source} -> n{target}{suffix};"
