"""Longitudinal run ledger: persistent accuracy & performance history.

The rest of :mod:`repro.obs` observes a *single* invocation — spans and
metrics evaporate when the process exits (apart from the last stats
snapshot).  The ledger is the cross-run layer: an append-only SQLite
database that records one row per ``repro run``/``run all``, ``fuzz
run``, or benchmark invocation, plus the run's *actual accuracy
numbers* (weight-matching scores per estimator and cutoff, branch-miss
rates, selective-optimization payoffs), its stage wall-times (derived
from the span tree), and its metric counters (cache traffic, solver
dispatches, interpreter totals).  ``repro history``, ``repro compare``,
and ``repro report`` are views over this store; a committed baseline
plus ``repro compare --baseline … --fail-on-regression`` turns
estimator drift into a red build.

Layout::

    <ledger dir>/ledger.db        # SQLite, schema below

    runs(id, started_at, kind, label, git_sha, python, platform,
         jobs, cache_enabled, schema_version, version)
    scores(run_id, experiment, metric, value)    -- accuracy numbers
    stages(run_id, stage, seconds)               -- span-derived times
    counters(run_id, name, value)                -- metric deltas

Environment knobs:

* ``REPRO_LEDGER=0`` — disable recording (reads still work against an
  explicit path).
* ``REPRO_LEDGER_DIR`` — ledger directory (default: a ``ledger/``
  subdirectory of the profile cache, so tests inherit hermeticity from
  ``REPRO_CACHE_DIR``).

Concurrency: every append runs inside one ``BEGIN IMMEDIATE``
transaction with a generous busy timeout, so parallel processes (two
CI shards, a fuzz run racing a benchmark) interleave whole runs rather
than corrupting each other.

Comparison semantics are *drift detection*, not "higher is better":
some ledger metrics improve upward (weight-matching scores), others
downward (miss rates), so :func:`compare_scores` flags any score whose
absolute delta exceeds the tolerance, in either direction, plus any
experiment or metric that disappeared.  Stage times regress only
upward, gated by a relative tolerance and an absolute noise floor.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import platform as platform_module
import sqlite3
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Mapping, Optional

SCHEMA_VERSION = 1

#: Absolute stage-time change (seconds) below which a relative
#: slowdown is treated as noise, not a regression.
TIME_NOISE_FLOOR = 0.05

_FALSEY = {"0", "no", "off", "false", ""}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    started_at TEXT NOT NULL,
    kind TEXT NOT NULL,
    label TEXT NOT NULL DEFAULT '',
    git_sha TEXT NOT NULL DEFAULT '',
    python TEXT NOT NULL DEFAULT '',
    platform TEXT NOT NULL DEFAULT '',
    jobs INTEGER NOT NULL DEFAULT 1,
    cache_enabled INTEGER NOT NULL DEFAULT 1,
    schema_version INTEGER NOT NULL DEFAULT 1,
    version TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS scores (
    run_id INTEGER NOT NULL,
    experiment TEXT NOT NULL,
    metric TEXT NOT NULL,
    value REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS stages (
    run_id INTEGER NOT NULL,
    stage TEXT NOT NULL,
    seconds REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    run_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    value REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_scores_run ON scores(run_id);
CREATE INDEX IF NOT EXISTS idx_scores_experiment ON scores(experiment);
CREATE INDEX IF NOT EXISTS idx_stages_run ON stages(run_id);
CREATE INDEX IF NOT EXISTS idx_counters_run ON counters(run_id);
"""


def ledger_enabled() -> bool:
    """Whether run recording is on (``REPRO_LEDGER`` knob)."""
    return (
        os.environ.get("REPRO_LEDGER", "1").strip().lower() not in _FALSEY
    )


def ledger_dir() -> str:
    """The ledger directory (not necessarily created yet)."""
    explicit = os.environ.get("REPRO_LEDGER_DIR")
    if explicit:
        return explicit
    from repro.profiles import cache as profile_cache

    return os.path.join(profile_cache.cache_dir(), "ledger")


def ledger_path() -> str:
    """Path of the SQLite database file."""
    return os.path.join(ledger_dir(), "ledger.db")


def _connect(path: Optional[str] = None) -> sqlite3.Connection:
    path = path or ledger_path()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    connection = sqlite3.connect(path, timeout=30.0)
    connection.execute("PRAGMA busy_timeout = 30000")
    connection.executescript(_SCHEMA)
    # Databases created before the ``version`` column existed migrate
    # in place (CREATE TABLE IF NOT EXISTS leaves them untouched).
    columns = {
        row[1]
        for row in connection.execute("PRAGMA table_info(runs)")
    }
    if "version" not in columns:
        connection.execute(
            "ALTER TABLE runs ADD COLUMN version TEXT NOT NULL"
            " DEFAULT ''"
        )
        connection.commit()
    return connection


# ----------------------------------------------------------------------
# Environment fingerprint.


def now_iso() -> str:
    """The local wall-clock time as an ISO-8601 second-resolution
    string — the ``started_at`` stamp callers pass into a run row."""
    return datetime.datetime.now().astimezone().isoformat(
        timespec="seconds"
    )


def git_sha() -> str:
    """Short git revision of the working tree, or '' outside a repo."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return completed.stdout.strip() if completed.returncode == 0 else ""


def environment_fingerprint() -> dict[str, str]:
    """The per-run provenance columns: git sha, python, platform, and
    the installed ``repro`` package version."""
    import repro

    return {
        "git_sha": git_sha(),
        "python": platform_module.python_version(),
        "platform": f"{sys.platform}-{platform_module.machine()}",
        "version": repro.__version__,
    }


# ----------------------------------------------------------------------
# Scalar flattening (experiment results -> score rows).

#: Guard rails for :func:`flatten_scalars` on adversarial inputs.
_FLATTEN_MAX_DEPTH = 8
_FLATTEN_MAX_ENTRIES = 4000


def flatten_scalars(value: object, prefix: str = "") -> dict[str, float]:
    """Flatten a result object into deterministic ``{path: number}``.

    Numbers become leaves keyed by their ``/``-joined path; dicts,
    lists/tuples, and dataclasses recurse (dict keys sorted by their
    string form, so int-keyed block tables are stable); strings, bools,
    and everything else are skipped.  This is how every experiment's
    *actual* accuracy numbers — whatever their shape — become ledger
    score rows without per-experiment plumbing.
    """
    out: dict[str, float] = {}
    _flatten(value, prefix, out, 0)
    return out


def _flatten(
    value: object, prefix: str, out: dict[str, float], depth: int
) -> None:
    if len(out) >= _FLATTEN_MAX_ENTRIES or depth > _FLATTEN_MAX_DEPTH:
        return
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix or "value"] = float(value)
        return
    if isinstance(value, Mapping):
        for key in sorted(value, key=str):
            _flatten(
                value[key],
                f"{prefix}/{key}" if prefix else str(key),
                out,
                depth + 1,
            )
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _flatten(
                item,
                f"{prefix}/{index}" if prefix else str(index),
                out,
                depth + 1,
            )
        return
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for field_ in dataclasses.fields(value):
            if field_.name.startswith("_"):
                continue
            _flatten(
                getattr(value, field_.name),
                f"{prefix}/{field_.name}" if prefix else field_.name,
                out,
                depth + 1,
            )


def counter_values(
    snapshot: Optional[dict[str, dict]] = None
) -> dict[str, float]:
    """Flatten a metrics snapshot (or delta) into ``{name: value}``.

    Counters and gauges contribute their value; histograms contribute
    ``<name>.count`` and ``<name>.sum``.  With no argument, flattens
    the live process-global registry.
    """
    if snapshot is None:
        from repro.obs.metrics import metrics_snapshot

        snapshot = metrics_snapshot()
    out: dict[str, float] = {}
    for name in sorted(snapshot):
        state = snapshot[name]
        kind = state.get("type")
        if kind in ("counter", "gauge"):
            out[name] = float(state["value"])
        elif kind == "histogram":
            out[f"{name}.count"] = float(state["count"])
            out[f"{name}.sum"] = float(state["sum"])
    return out


# ----------------------------------------------------------------------
# Recording.


def record_run(
    kind: str,
    *,
    label: str = "",
    started_at: Optional[str] = None,
    jobs: int = 1,
    scores: Optional[Mapping[str, Mapping[str, float]]] = None,
    stages: Optional[Mapping[str, float]] = None,
    counters: Optional[Mapping[str, float]] = None,
    path: Optional[str] = None,
) -> Optional[int]:
    """Append one run (plus its score/stage/counter rows) atomically.

    Returns the new run id, or None when recording is disabled.  The
    whole append is a single ``BEGIN IMMEDIATE`` transaction, so two
    processes writing concurrently produce interleaved-but-complete
    runs, never a torn one.
    """
    if not ledger_enabled():
        return None
    fingerprint = environment_fingerprint()
    from repro.profiles.cache import cache_enabled

    connection = _connect(path)
    try:
        connection.execute("BEGIN IMMEDIATE")
        cursor = connection.execute(
            "INSERT INTO runs (started_at, kind, label, git_sha, python,"
            " platform, jobs, cache_enabled, schema_version, version)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                started_at or now_iso(),
                kind,
                label,
                fingerprint["git_sha"],
                fingerprint["python"],
                fingerprint["platform"],
                int(jobs),
                1 if cache_enabled() else 0,
                SCHEMA_VERSION,
                fingerprint["version"],
            ),
        )
        run_id = int(cursor.lastrowid)
        if scores:
            connection.executemany(
                "INSERT INTO scores (run_id, experiment, metric, value)"
                " VALUES (?, ?, ?, ?)",
                [
                    (run_id, experiment, metric, float(value))
                    for experiment in sorted(scores)
                    for metric, value in sorted(
                        scores[experiment].items()
                    )
                ],
            )
        if stages:
            connection.executemany(
                "INSERT INTO stages (run_id, stage, seconds)"
                " VALUES (?, ?, ?)",
                [
                    (run_id, stage, float(seconds))
                    for stage, seconds in sorted(stages.items())
                ],
            )
        if counters:
            connection.executemany(
                "INSERT INTO counters (run_id, name, value)"
                " VALUES (?, ?, ?)",
                [
                    (run_id, name, float(value))
                    for name, value in sorted(counters.items())
                ],
            )
        connection.commit()
    except BaseException:
        connection.rollback()
        raise
    finally:
        connection.close()
    return run_id


# ----------------------------------------------------------------------
# Reading.


@dataclass(frozen=True)
class RunRow:
    """One ``runs`` table row."""

    id: int
    started_at: str
    kind: str
    label: str
    git_sha: str
    python: str
    platform: str
    jobs: int
    cache_enabled: bool
    #: ``repro.__version__`` of the process that recorded the run.
    version: str = ""
    #: Distinct experiments with score rows in this run.
    experiments: int = 0


@dataclass
class RunDetail:
    """One run with every associated row set."""

    row: RunRow
    scores: dict[str, dict[str, float]] = field(default_factory=dict)
    stages: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-able form (``repro history show --json``); usable as a
        ``repro compare --baseline`` file."""
        return {
            "format": SCHEMA_VERSION,
            "run": dataclasses.asdict(self.row),
            "scores": {
                experiment: dict(sorted(metrics.items()))
                for experiment, metrics in sorted(self.scores.items())
            },
            "stages": dict(sorted(self.stages.items())),
            "counters": dict(sorted(self.counters.items())),
        }


def _row_to_run(row: tuple) -> RunRow:
    return RunRow(
        id=int(row[0]),
        started_at=str(row[1]),
        kind=str(row[2]),
        label=str(row[3]),
        git_sha=str(row[4]),
        python=str(row[5]),
        platform=str(row[6]),
        jobs=int(row[7]),
        cache_enabled=bool(row[8]),
        version=str(row[9]),
        experiments=int(row[10]),
    )


_RUN_COLUMNS = (
    "r.id, r.started_at, r.kind, r.label, r.git_sha, r.python,"
    " r.platform, r.jobs, r.cache_enabled, r.version,"
    " (SELECT COUNT(DISTINCT experiment) FROM scores s"
    "  WHERE s.run_id = r.id)"
)


def list_runs(
    limit: Optional[int] = None,
    experiment: Optional[str] = None,
    path: Optional[str] = None,
) -> list[RunRow]:
    """Recorded runs, newest first; empty when no ledger exists yet.

    ``experiment`` restricts to runs holding score rows for it.
    """
    db_path = path or ledger_path()
    if not os.path.exists(db_path):
        return []
    connection = _connect(db_path)
    try:
        query = f"SELECT {_RUN_COLUMNS} FROM runs r"
        parameters: list[object] = []
        if experiment:
            query += (
                " WHERE EXISTS (SELECT 1 FROM scores s"
                " WHERE s.run_id = r.id AND s.experiment = ?)"
            )
            parameters.append(experiment)
        query += " ORDER BY r.id DESC"
        if limit is not None:
            query += " LIMIT ?"
            parameters.append(int(limit))
        return [
            _row_to_run(row)
            for row in connection.execute(query, parameters)
        ]
    finally:
        connection.close()


def resolve_run(ref: str, path: Optional[str] = None) -> RunRow:
    """Resolve a run reference to its row.

    Accepted forms: a numeric id, ``latest``, or ``latest~N`` (the Nth
    run before the newest).  Raises KeyError when nothing matches.
    """
    ref = ref.strip()
    runs = list_runs(path=path)
    if not runs:
        raise KeyError("the run ledger is empty (no runs recorded yet)")
    if ref.isdigit():
        wanted = int(ref)
        for run in runs:
            if run.id == wanted:
                return run
        raise KeyError(f"no run with id {wanted} in the ledger")
    if ref == "latest":
        return runs[0]
    if ref.startswith("latest~"):
        suffix = ref[len("latest~"):]
        if suffix.isdigit():
            offset = int(suffix)
            if offset < len(runs):
                return runs[offset]
            raise KeyError(
                f"{ref!r} is out of range (ledger holds "
                f"{len(runs)} runs)"
            )
    raise KeyError(
        f"bad run reference {ref!r} (use a run id, 'latest', or "
        f"'latest~N')"
    )


def run_detail(run: RunRow, path: Optional[str] = None) -> RunDetail:
    """Load a run's score, stage, and counter rows."""
    connection = _connect(path or ledger_path())
    try:
        detail = RunDetail(row=run)
        for experiment, metric, value in connection.execute(
            "SELECT experiment, metric, value FROM scores"
            " WHERE run_id = ? ORDER BY experiment, metric",
            (run.id,),
        ):
            detail.scores.setdefault(experiment, {})[metric] = value
        for stage, seconds in connection.execute(
            "SELECT stage, seconds FROM stages"
            " WHERE run_id = ? ORDER BY stage",
            (run.id,),
        ):
            detail.stages[stage] = seconds
        for name, value in connection.execute(
            "SELECT name, value FROM counters"
            " WHERE run_id = ? ORDER BY name",
            (run.id,),
        ):
            detail.counters[name] = value
        return detail
    finally:
        connection.close()


def ledger_info(path: Optional[str] = None) -> dict[str, object]:
    """Summary for ``repro cache info``: run/row counts, db bytes,
    oldest/newest run stamps."""
    db_path = path or ledger_path()
    info: dict[str, object] = {
        "directory": os.path.dirname(db_path),
        "path": db_path,
        "enabled": ledger_enabled(),
        "runs": 0,
        "score_rows": 0,
        "bytes": 0,
        "oldest_run": None,
        "newest_run": None,
    }
    if not os.path.exists(db_path):
        return info
    info["bytes"] = os.stat(db_path).st_size
    connection = _connect(db_path)
    try:
        info["runs"] = connection.execute(
            "SELECT COUNT(*) FROM runs"
        ).fetchone()[0]
        info["score_rows"] = connection.execute(
            "SELECT COUNT(*) FROM scores"
        ).fetchone()[0]
        oldest, newest = connection.execute(
            "SELECT MIN(started_at), MAX(started_at) FROM runs"
        ).fetchone()
        info["oldest_run"] = oldest
        info["newest_run"] = newest
    finally:
        connection.close()
    return info


def clear_ledger(path: Optional[str] = None) -> int:
    """Delete the ledger database; returns how many runs it held."""
    db_path = path or ledger_path()
    removed = 0
    if os.path.exists(db_path):
        connection = _connect(db_path)
        try:
            removed = connection.execute(
                "SELECT COUNT(*) FROM runs"
            ).fetchone()[0]
        finally:
            connection.close()
    for suffix in ("", "-journal", "-wal", "-shm"):
        try:
            os.unlink(db_path + suffix)
        except OSError:
            pass
    return removed


# ----------------------------------------------------------------------
# Comparison (``repro compare`` and the CI regression gate).


@dataclass(frozen=True)
class ScoreDelta:
    """One metric's movement between two runs."""

    experiment: str
    metric: str
    base: float
    candidate: float

    @property
    def delta(self) -> float:
        return self.candidate - self.base


@dataclass(frozen=True)
class StageDelta:
    """One stage's wall-time movement between two runs."""

    stage: str
    base: float
    candidate: float

    @property
    def delta(self) -> float:
        return self.candidate - self.base


@dataclass
class Comparison:
    """The result of comparing a candidate run against a base."""

    base_label: str
    candidate_label: str
    score_tol: float
    time_tol: float
    compared: int = 0
    #: Metrics whose |delta| exceeds ``score_tol`` (drifted).
    drifted: list[ScoreDelta] = field(default_factory=list)
    #: ``experiment/metric`` paths present in base, absent in candidate.
    missing: list[str] = field(default_factory=list)
    #: Experiments only the candidate has (informational).
    extra_experiments: list[str] = field(default_factory=list)
    #: Stages slower than base beyond ``time_tol`` (and the floor).
    slower_stages: list[StageDelta] = field(default_factory=list)
    #: All shared stages, for the delta table.
    stage_deltas: list[StageDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[str]:
        """Human messages, one per gate violation."""
        messages = [
            (
                f"score drift {item.experiment}/{item.metric}: "
                f"{item.base:.6g} -> {item.candidate:.6g} "
                f"(delta {item.delta:+.6g}, tol {self.score_tol:g})"
            )
            for item in self.drifted
        ]
        messages.extend(
            f"missing metric {path} (present in base, absent in "
            f"candidate)"
            for path in self.missing
        )
        messages.extend(
            (
                f"stage slowdown {item.stage}: {item.base:.3f}s -> "
                f"{item.candidate:.3f}s "
                f"(+{(item.candidate / item.base - 1) * 100:.0f}%, "
                f"tol {self.time_tol * 100:.0f}%)"
            )
            for item in self.slower_stages
        )
        return messages

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"compare {self.base_label} (base) -> "
            f"{self.candidate_label} (candidate)",
            f"  {self.compared} shared metrics, "
            f"{len(self.drifted)} beyond tolerance "
            f"(score tol {self.score_tol:g}), "
            f"{len(self.missing)} missing",
        ]
        if self.extra_experiments:
            lines.append(
                "  candidate-only experiments: "
                + ", ".join(self.extra_experiments)
            )
        for message in self.regressions[:50]:
            lines.append(f"  REGRESSION: {message}")
        hidden = len(self.regressions) - 50
        if hidden > 0:
            lines.append(f"  ... and {hidden} more regressions")
        if self.stage_deltas:
            lines.append("")
            lines.append(
                f"  {'stage':28} {'base':>9} {'candidate':>10} "
                f"{'delta':>9}"
            )
            for item in self.stage_deltas:
                lines.append(
                    f"  {item.stage:28} {item.base:8.3f}s "
                    f"{item.candidate:9.3f}s {item.delta:+8.3f}s"
                )
        lines.append("")
        lines.append(
            "result: OK (no drift beyond tolerance)"
            if self.ok
            else f"result: {len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)


def compare_scores(
    base: Mapping[str, Mapping[str, float]],
    candidate: Mapping[str, Mapping[str, float]],
    score_tol: float = 1e-6,
    time_tol: float = 0.25,
    base_stages: Optional[Mapping[str, float]] = None,
    candidate_stages: Optional[Mapping[str, float]] = None,
    base_label: str = "base",
    candidate_label: str = "candidate",
) -> Comparison:
    """Compare two runs' score sets (and optionally stage times).

    Scores gate on *absolute drift in either direction* — the suite's
    metrics are deterministic, so any movement means the estimators,
    the suite, or the scoring changed.  Stage times gate upward only,
    beyond ``time_tol`` (relative) and :data:`TIME_NOISE_FLOOR`.
    """
    comparison = Comparison(
        base_label=base_label,
        candidate_label=candidate_label,
        score_tol=score_tol,
        time_tol=time_tol,
    )
    for experiment in sorted(base):
        candidate_metrics = candidate.get(experiment)
        if candidate_metrics is None:
            comparison.missing.append(experiment)
            continue
        for metric in sorted(base[experiment]):
            if metric not in candidate_metrics:
                comparison.missing.append(f"{experiment}/{metric}")
                continue
            comparison.compared += 1
            base_value = float(base[experiment][metric])
            candidate_value = float(candidate_metrics[metric])
            if abs(candidate_value - base_value) > score_tol:
                comparison.drifted.append(
                    ScoreDelta(
                        experiment, metric, base_value, candidate_value
                    )
                )
    comparison.extra_experiments = sorted(
        set(candidate) - set(base)
    )
    if base_stages and candidate_stages:
        for stage in sorted(base_stages):
            if stage not in candidate_stages:
                continue
            item = StageDelta(
                stage,
                float(base_stages[stage]),
                float(candidate_stages[stage]),
            )
            comparison.stage_deltas.append(item)
            if (
                item.base > 0.0
                and item.delta > TIME_NOISE_FLOOR
                and item.candidate > item.base * (1.0 + time_tol)
            ):
                comparison.slower_stages.append(item)
    return comparison


def load_baseline(path: str) -> dict[str, dict[str, float]]:
    """Read a baseline scores file (``baselines/scores.json``).

    Accepts either a bare ``{experiment: {metric: value}}`` mapping or
    a ``repro history show --json`` payload (uses its ``scores`` key).
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"baseline {path} is not a JSON object")
    scores = payload.get("scores", payload)
    if not isinstance(scores, dict):
        raise ValueError(f"baseline {path} has no usable 'scores' map")
    result: dict[str, dict[str, float]] = {}
    for experiment, metrics in scores.items():
        if not isinstance(metrics, dict):
            raise ValueError(
                f"baseline {path}: experiment {experiment!r} does not "
                f"map metrics to numbers"
            )
        result[str(experiment)] = {
            str(metric): float(value)
            for metric, value in metrics.items()
        }
    return result


def score_history(
    experiment: str,
    limit: Optional[int] = None,
    path: Optional[str] = None,
) -> list[tuple[RunRow, dict[str, float]]]:
    """``(run, metrics)`` for every run holding ``experiment`` scores,
    oldest first (the natural order for sparklines)."""
    runs = list_runs(limit=limit, experiment=experiment, path=path)
    return [
        (run, run_detail(run, path=path).scores.get(experiment, {}))
        for run in reversed(runs)
    ]


__all__ = [
    "Comparison",
    "RunDetail",
    "RunRow",
    "SCHEMA_VERSION",
    "ScoreDelta",
    "StageDelta",
    "TIME_NOISE_FLOOR",
    "clear_ledger",
    "compare_scores",
    "counter_values",
    "environment_fingerprint",
    "flatten_scalars",
    "git_sha",
    "ledger_dir",
    "ledger_enabled",
    "ledger_info",
    "ledger_path",
    "list_runs",
    "load_baseline",
    "now_iso",
    "record_run",
    "resolve_run",
    "run_detail",
    "score_history",
]
