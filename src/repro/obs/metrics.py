"""Process-global metrics registry: counters, gauges, histograms.

Metrics are always on — recording is a dict lookup plus an add, and
every instrumentation point sits at cache-probe or solver granularity,
never inside the interpreter's per-block hot loop — so hit rates and
dispatch decisions are available even when span tracing is disabled.

The registry is process-global.  Worker processes capture a snapshot
before doing work, compute the *delta* afterwards, and ship it back to
the parent (see :mod:`repro.obs.aggregate`), which merges deltas in
deterministic task order; counters and histogram components add, gauges
take the merged value last-writer-wins.

Rendering: :func:`render_metrics` produces the human table behind
``repro stats``; :func:`render_prometheus` the ``--format prom``
text-exposition view.
"""

from __future__ import annotations

import re
from typing import Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (hits, misses, bytes, calls)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (worker count, configured jobs)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


#: Per-histogram sample reservoir bound.  Below the cap the reservoir
#: is the exact observation multiset (so percentiles are exact and
#: serial vs. ``--jobs N`` runs agree); past it, new observations
#: overwrite slots in a deterministic stride so the reservoir keeps
#: tracking the recent distribution without ever growing.
SAMPLE_CAP = 512

#: Odd stride coprime to every possible cap ≤ SAMPLE_CAP, so repeated
#: replacement visits all slots before reusing one.
_SAMPLE_STRIDE = 40503


class Histogram:
    """A distribution summary: count, sum, min, max, plus a bounded
    sample reservoir for percentiles and an optional exemplar (the
    trace id of one recent observation, for metric→trace pivots)."""

    __slots__ = (
        "count", "total", "minimum", "maximum",
        "samples", "exemplar", "_cursor",
    )
    kind = "histogram"

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.samples: list[float] = []
        self.exemplar: Optional[dict] = None
        self._cursor: int = 0

    def observe(
        self, value: Number, exemplar: Optional[str] = None
    ) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self._insert(value)
        if exemplar is not None:
            self.exemplar = {"value": value, "trace_id": exemplar}

    def _insert(self, value: float) -> None:
        self._cursor += 1
        if len(self.samples) < SAMPLE_CAP:
            self.samples.append(value)
        else:
            self.samples[
                (self._cursor * _SAMPLE_STRIDE) % SAMPLE_CAP
            ] = value

    def percentiles(self) -> Optional[dict[str, float]]:
        """Nearest-rank p50/p95/p99 over the sample reservoir."""
        return sample_percentiles(self.samples)

    def to_dict(self) -> dict:
        payload = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "samples": list(self.samples),
        }
        if self.exemplar is not None:
            payload["exemplar"] = dict(self.exemplar)
        return payload


def sample_percentiles(
    samples: Optional[list[float]],
) -> Optional[dict[str, float]]:
    """Nearest-rank ``{"p50", "p95", "p99"}`` of a sample list."""
    if not samples:
        return None
    ordered = sorted(samples)
    last = len(ordered) - 1
    return {
        f"p{int(q * 100)}": ordered[min(last, int(round(q * last)))]
        for q in (0.50, 0.95, 0.99)
    }


Metric = Union[Counter, Gauge, Histogram]

_REGISTRY: dict[str, Metric] = {}


def _metric(name: str, factory) -> Metric:
    metric = _REGISTRY.get(name)
    if metric is None:
        metric = _REGISTRY[name] = factory()
    return metric


def counter(name: str) -> Counter:
    """The counter registered under ``name`` (created on first use)."""
    return _metric(name, Counter)  # type: ignore[return-value]


def gauge(name: str) -> Gauge:
    """The gauge registered under ``name`` (created on first use)."""
    return _metric(name, Gauge)  # type: ignore[return-value]


def histogram(name: str) -> Histogram:
    """The histogram registered under ``name`` (created on first use)."""
    return _metric(name, Histogram)  # type: ignore[return-value]


def incr(name: str, amount: Number = 1) -> None:
    """Increment the counter ``name`` by ``amount``."""
    counter(name).inc(amount)


def set_gauge(name: str, value: Number) -> None:
    """Set the gauge ``name`` to ``value``."""
    gauge(name).set(value)


def observe(
    name: str, value: Number, exemplar: Optional[str] = None
) -> None:
    """Record one observation into the histogram ``name`` (with an
    optional exemplar trace id)."""
    histogram(name).observe(value, exemplar=exemplar)


def counter_value(name: str) -> Number:
    """Current value of the counter ``name`` (0 if never touched)."""
    metric = _REGISTRY.get(name)
    return metric.value if isinstance(metric, Counter) else 0


def histogram_sums(prefix: str) -> dict[str, float]:
    """``{name without prefix: sum}`` for histograms under ``prefix``,
    in name order regardless of registration order (worker merges
    register metrics in whatever order the deltas arrive)."""
    return {
        name[len(prefix):]: _REGISTRY[name].total  # type: ignore[union-attr]
        for name in sorted(_REGISTRY)
        if isinstance(_REGISTRY[name], Histogram)
        and name.startswith(prefix)
    }


def reset_metrics() -> None:
    """Drop every registered metric (tests and worker hygiene)."""
    _REGISTRY.clear()


def metrics_snapshot() -> dict[str, dict]:
    """All metrics as a plain JSON-able ``{name: state}`` mapping."""
    return {
        name: _REGISTRY[name].to_dict() for name in sorted(_REGISTRY)
    }


def metrics_delta(before: dict[str, dict]) -> dict[str, dict]:
    """What changed since ``before`` (a prior :func:`metrics_snapshot`).

    Counters and histograms subtract component-wise; gauges report
    their current value whenever it differs.  Only changed metrics
    appear, so worker→parent payloads stay small.
    """
    delta: dict[str, dict] = {}
    for name, state in metrics_snapshot().items():
        previous = before.get(name)
        if state["type"] == "counter":
            base = previous["value"] if previous else 0
            if state["value"] != base:
                delta[name] = {
                    "type": "counter", "value": state["value"] - base
                }
        elif state["type"] == "gauge":
            if previous is None or state["value"] != previous["value"]:
                delta[name] = state
        else:  # histogram
            base_count = previous["count"] if previous else 0
            if state["count"] != base_count:
                # The reservoir is exact while total observations stay
                # under the cap, so ship only the samples recorded
                # since the snapshot; once replacement kicks in the
                # whole reservoir goes (an approximation, like any
                # bounded reservoir).
                samples = state.get("samples", [])
                if state["count"] <= SAMPLE_CAP:
                    samples = samples[min(base_count, SAMPLE_CAP):]
                delta[name] = {
                    "type": "histogram",
                    "count": state["count"] - base_count,
                    "sum": state["sum"] - (
                        previous["sum"] if previous else 0.0
                    ),
                    "min": state["min"],
                    "max": state["max"],
                    "samples": list(samples),
                }
                if state.get("exemplar") is not None:
                    delta[name]["exemplar"] = state["exemplar"]
    return delta


def merge_metrics(delta: dict[str, dict]) -> None:
    """Fold one worker's :func:`metrics_delta` into this registry."""
    for name, state in sorted(delta.items()):
        kind = state.get("type")
        if kind == "counter":
            counter(name).inc(state["value"])
        elif kind == "gauge":
            gauge(name).set(state["value"])
        elif kind == "histogram":
            target = histogram(name)
            target.count += state["count"]
            target.total += state["sum"]
            for value in state.get("samples", []):
                target._insert(float(value))
            if state.get("exemplar") is not None:
                target.exemplar = dict(state["exemplar"])
            for key, worse in (("minimum", min), ("maximum", max)):
                incoming = state["min" if key == "minimum" else "max"]
                if incoming is None:
                    continue
                current = getattr(target, key)
                setattr(
                    target,
                    key,
                    incoming if current is None else worse(
                        current, incoming
                    ),
                )


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


#: Section order of the ``repro stats`` table: counts first, then
#: point-in-time values, then distributions.
_TYPE_ORDER = {"counter": 0, "gauge": 1, "histogram": 2}


def render_metrics(snapshot: Optional[dict[str, dict]] = None) -> str:
    """Human-readable metrics table (the ``repro stats`` view).

    Rows are grouped by metric type (counters, then gauges, then
    histograms) and sorted by name within each group, so the table is
    byte-identical however the metrics were registered — serial runs,
    ``--jobs N`` worker merges, and cross-process ``absorb`` all
    render the same way.
    """
    if snapshot is None:
        snapshot = metrics_snapshot()
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    lines = [f"{'metric':{width}} {'type':9} value"]
    ordered = sorted(
        snapshot,
        key=lambda name: (
            _TYPE_ORDER.get(snapshot[name]["type"], len(_TYPE_ORDER)),
            name,
        ),
    )
    for name in ordered:
        state = snapshot[name]
        if state["type"] == "histogram":
            value = (
                f"count={state['count']} sum={_format_value(state['sum'])}"
                f" min={_format_value(state['min'])}"
            )
            quantiles = sample_percentiles(state.get("samples"))
            if quantiles:
                value += "".join(
                    f" {label}={_format_value(quantiles[label])}"
                    for label in ("p50", "p95", "p99")
                )
            value += f" max={_format_value(state['max'])}"
        else:
            value = _format_value(state["value"])
        lines.append(f"{name:{width}} {state['type']:9} {value}")
    return "\n".join(lines)


def _prom_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


#: Registry names of the form ``base{key=value,key=value}`` are labeled
#: series of the ``base`` family (the convention the serving layer uses
#: for per-tenant and per-status metrics).
_LABELED_NAME = re.compile(r"^(?P<base>[^{}]+)\{(?P<labels>.*)\}$")


def _split_labels(name: str) -> tuple[str, tuple[tuple[str, str], ...]]:
    """``"a{k=v,k2=v2}"`` → ``("a", (("k", "v"), ("k2", "v2")))``."""
    match = _LABELED_NAME.match(name)
    if match is None:
        return name, ()
    labels = []
    for pair in match.group("labels").split(","):
        key, sep, value = pair.partition("=")
        if sep and key.strip():
            labels.append((key.strip(), value))
    return match.group("base"), tuple(labels)


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{re.sub(r"[^a-zA-Z0-9_]", "_", key)}='
        f'"{_escape_label_value(value)}"'
        for key, value in labels
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: Optional[dict[str, dict]] = None) -> str:
    """Prometheus text-exposition rendering of a metrics snapshot.

    Each family gets ``# HELP`` and ``# TYPE`` lines followed by its
    series; registry names carrying a ``{key=value,...}`` suffix render
    as labeled series of one family with label values escaped per the
    exposition format.  Counters get the conventional ``_total`` suffix
    and histograms export as summaries (``_count``/``_sum``).
    """
    if snapshot is None:
        snapshot = metrics_snapshot()
    families: dict[tuple[str, str], list] = {}
    for name in sorted(snapshot):
        state = snapshot[name]
        base, labels = _split_labels(name)
        families.setdefault((base, state["type"]), []).append(
            (labels, state)
        )
    lines: list[str] = []
    for base, kind in sorted(families):
        prom = _prom_name(base)
        if kind == "counter":
            prom += "_total"
        prom_type = "summary" if kind == "histogram" else kind
        lines.append(f"# HELP {prom} {kind} {base}")
        lines.append(f"# TYPE {prom} {prom_type}")
        for labels, state in families[(base, kind)]:
            rendered = _render_labels(labels)
            if kind == "histogram":
                count_line = f"{prom}_count{rendered} {state['count']}"
                exemplar = state.get("exemplar")
                if exemplar:
                    # OpenMetrics-style exemplar: one recent
                    # observation pinned to its trace id, the
                    # metric→trace pivot for dashboards.
                    count_line += (
                        f' # {{trace_id="'
                        f'{_escape_label_value(str(exemplar["trace_id"]))}'
                        f'"}} {_format_value(exemplar["value"])}'
                    )
                lines.append(count_line)
                lines.append(
                    f"{prom}_sum{rendered} "
                    f"{_format_value(state['sum'])}"
                )
                quantiles = sample_percentiles(state.get("samples"))
                for fraction, label in (
                    ("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")
                ):
                    if quantiles:
                        quantile_labels = labels + (
                            ("quantile", fraction),
                        )
                        lines.append(
                            f"{prom}{_render_labels(quantile_labels)} "
                            f"{_format_value(quantiles[label])}"
                        )
            else:
                lines.append(
                    f"{prom}{rendered} {_format_value(state['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
