"""Zero-dependency tracing and metrics for the whole pipeline.

Four pieces, threaded through every layer of the system:

* :mod:`repro.obs.trace` — hierarchical spans with contextvar parent
  tracking; off by default (``REPRO_TRACE``/``--trace``), near-zero
  overhead when disabled.
* :mod:`repro.obs.metrics` — an always-on registry of counters, gauges,
  and histograms (cache hits/misses/bytes, interpreter run totals,
  solver dispatch decisions, analysis stage times).
* :mod:`repro.obs.aggregate` — worker tasks capture their spans and
  metric deltas and ship them to the parent, which merges them in
  deterministic task order, so ``--jobs N`` yields one coherent trace.
* :mod:`repro.obs.export` — JSONL traces (``REPRO_TRACE_FILE``), the
  ``repro trace`` tree report, and the persisted metrics snapshot
  behind ``repro stats``.

Two request-level companions (imported on demand, not re-exported):
:mod:`repro.obs.flight`, the daemon's tail-sampled flight recorder
and structured access log, and :mod:`repro.obs.profiler`, the
zero-dependency sampling wall-clock profiler behind ``repro
profile`` and ``GET /debug/profile``.

This module also owns :func:`diag`, the single helper all diagnostic
stderr chatter routes through (``--quiet``/``REPRO_QUIET`` silence it
without touching stdout).
"""

from __future__ import annotations

import os
import sys

from repro.obs.aggregate import WorkerCapture, absorb
from repro.obs.export import (
    default_trace_path,
    read_stats,
    read_trace_jsonl,
    render_span_tree,
    stats_file_path,
    write_stats,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    counter,
    counter_value,
    gauge,
    histogram,
    histogram_sums,
    incr,
    merge_metrics,
    metrics_delta,
    metrics_snapshot,
    observe,
    render_metrics,
    render_prometheus,
    reset_metrics,
    sample_percentiles,
    set_gauge,
)
from repro.obs.trace import (
    Span,
    TraceBuffer,
    attach_span,
    current_buffer,
    current_span,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    forced_tracing,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    request_buffer,
    reset_trace,
    span,
    span_names,
    trace_roots,
    tracing_enabled,
    walk_spans,
)

_QUIET: bool = (
    os.environ.get("REPRO_QUIET", "").strip().lower()
    in {"1", "yes", "on", "true"}
)


def set_quiet(value: bool) -> None:
    """Silence (or restore) diagnostic stderr output."""
    global _QUIET
    _QUIET = bool(value)


def quiet_enabled() -> bool:
    """Whether diagnostic chatter is suppressed."""
    return _QUIET


def diag(message: str) -> None:
    """Print one diagnostic line to stderr unless quiet is on.

    Every informational message the CLI emits (timings, progress,
    cache traffic) goes through here, so ``--quiet`` silences all of
    it at once while stdout stays untouched for scripted use.
    """
    if not _QUIET:
        print(message, file=sys.stderr)


__all__ = [
    "Span",
    "TraceBuffer",
    "WorkerCapture",
    "absorb",
    "attach_span",
    "counter",
    "counter_value",
    "current_buffer",
    "current_span",
    "current_trace_id",
    "default_trace_path",
    "diag",
    "disable_tracing",
    "enable_tracing",
    "forced_tracing",
    "format_traceparent",
    "gauge",
    "histogram",
    "histogram_sums",
    "incr",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "request_buffer",
    "merge_metrics",
    "metrics_delta",
    "metrics_snapshot",
    "observe",
    "quiet_enabled",
    "read_stats",
    "read_trace_jsonl",
    "render_metrics",
    "render_prometheus",
    "render_span_tree",
    "reset_metrics",
    "reset_trace",
    "sample_percentiles",
    "set_gauge",
    "set_quiet",
    "span",
    "span_names",
    "stats_file_path",
    "trace_roots",
    "tracing_enabled",
    "walk_spans",
    "write_stats",
    "write_trace_jsonl",
]
