"""Cross-process aggregation: worker capture and parent merge.

The fan-out layers (suite profiling, ``run all`` experiments) execute
tasks in ``ProcessPoolExecutor`` workers.  Observability data must not
be lost there, so every worker task runs inside a
:class:`WorkerCapture`:

1. on entry it detaches from any span context copied across ``fork``,
   marks the local trace buffer, and snapshots the metrics registry;
2. the task runs, producing spans and metric increments as usual;
3. on exit the capture extracts exactly the spans and metric deltas the
   task produced, as a plain JSON-able ``snapshot`` dict that travels
   back to the parent with the task result.

The parent calls :func:`absorb` on each snapshot *in deterministic task
order* (the fan-outs iterate ``pool.map`` results, which preserves
submission order regardless of scheduling): metric deltas merge into
the parent registry and worker spans are re-parented under the span
that ran the fan-out — so a parallel run produces one coherent tree
whose shape does not depend on which worker ran what.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    merge_metrics,
    metrics_delta,
    metrics_snapshot,
)
from repro.obs.trace import (
    _CURRENT,
    _ROOTS,
    Span,
    attach_span,
    disable_tracing,
    enable_tracing,
    tracing_enabled,
)


class WorkerCapture:
    """Capture the spans and metric deltas of one worker task.

    ``trace`` is whether the parent wants spans back (its own tracing
    state at submission time); metrics are always captured.  After the
    ``with`` block, :attr:`snapshot` holds the JSON-able payload.
    """

    def __init__(self, trace: bool):
        self.trace = trace
        self.snapshot: dict = {}
        self._was_enabled = False
        self._token = None
        self._mark = 0
        self._metrics_before: dict = {}

    def __enter__(self) -> "WorkerCapture":
        # Under the fork start method the worker inherits the parent's
        # open-span context and trace buffer; detach from both so this
        # task's spans come out as clean roots.
        self._token = _CURRENT.set(None)
        self._mark = len(_ROOTS)
        self._was_enabled = tracing_enabled()
        if self.trace:
            enable_tracing()
        else:
            disable_tracing()
        self._metrics_before = metrics_snapshot()
        return self

    def __exit__(self, *_exc) -> None:
        spans = _ROOTS[self._mark:]
        del _ROOTS[self._mark:]
        _CURRENT.reset(self._token)
        if self._was_enabled:
            enable_tracing()
        else:
            disable_tracing()
        self.snapshot = {
            "spans": [span_.to_dict() for span_ in spans],
            "metrics": metrics_delta(self._metrics_before),
        }


def absorb(snapshot: Optional[dict]) -> None:
    """Merge one worker snapshot into this process.

    Metric deltas always merge; spans are adopted (under the currently
    open span) only while tracing is enabled, mirroring local behavior.
    """
    if not snapshot:
        return
    merge_metrics(snapshot.get("metrics", {}))
    if tracing_enabled():
        for payload in snapshot.get("spans", []):
            attach_span(Span.from_dict(payload))
