"""Exporters: JSONL traces, the span-tree report, stats persistence.

Three surfaces:

* **JSONL trace** — one object per span, pre-order, with ``id`` and
  ``parent`` fields assigned deterministically by the walk, written to
  ``REPRO_TRACE_FILE`` (default ``repro-trace.jsonl``).  Merged worker
  spans are already in the tree by the time a trace is written, so a
  parallel run exports one coherent file.
* **Span-tree report** (``repro trace``) — the JSONL read back and
  rendered as an indented tree; identically named siblings collapse
  into one line with a count, so 56 interpreter runs read as one row.
* **Stats snapshot** (``repro stats``) — the metrics registry is
  persisted at the end of each CLI command (under the profile cache
  directory, or ``REPRO_STATS_FILE``) and re-read by ``repro stats``,
  which is how counters survive between processes.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.obs.metrics import metrics_snapshot
from repro.obs.trace import Span, trace_roots


def default_trace_path() -> str:
    """Where ``--trace`` writes and ``repro trace`` reads by default."""
    return os.environ.get("REPRO_TRACE_FILE") or "repro-trace.jsonl"


def write_trace_jsonl(
    path: Optional[str] = None, roots: Optional[list[Span]] = None
) -> tuple[str, int]:
    """Write the trace as JSONL; returns ``(path, spans written)``.

    Ids are assigned by a pre-order walk, so two runs producing the
    same span tree produce byte-identical structure apart from times.
    """
    path = path or default_trace_path()
    roots = roots if roots is not None else trace_roots()
    lines: list[str] = []
    next_id = 0

    def emit(span_: Span, parent: Optional[int]) -> None:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        record = {
            "id": span_id,
            "parent": parent,
            "name": span_.name,
            "start": round(span_.start, 6),
            "seconds": round(span_.seconds, 6),
        }
        if span_.attrs:
            record["attrs"] = span_.attrs
        lines.append(json.dumps(record, sort_keys=True))
        for child in span_.children:
            emit(child, span_id)

    for root in roots:
        emit(root, None)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + ("\n" if lines else ""))
    return path, next_id


def read_trace_jsonl(path: str) -> list[Span]:
    """Rebuild the span trees from a JSONL trace file."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            span_ = Span(
                str(record["name"]), dict(record.get("attrs", {}))
            )
            span_.start = float(record.get("start", 0.0))
            span_.seconds = float(record.get("seconds", 0.0))
            by_id[int(record["id"])] = span_
            parent = record.get("parent")
            if parent is None:
                roots.append(span_)
            else:
                by_id[int(parent)].children.append(span_)
    return roots


def render_span_tree(
    roots: list[Span], full: bool = False, min_seconds: float = 0.0
) -> str:
    """Indented tree report of a trace.

    By default identically named siblings are aggregated (count and
    total seconds); ``full`` lists every span individually with its
    attributes.  ``min_seconds`` prunes aggregated rows cheaper than
    the threshold.
    """
    lines: list[str] = []

    def describe_attrs(attrs: dict) -> str:
        if not attrs:
            return ""
        inner = ", ".join(
            f"{key}={value}" for key, value in sorted(attrs.items())
        )
        return f"  [{inner}]"

    def walk_full(span_: Span, depth: int) -> None:
        lines.append(
            f"{'  ' * depth}{span_.name:<{max(1, 40 - 2 * depth)}} "
            f"{span_.seconds * 1000:9.2f} ms{describe_attrs(span_.attrs)}"
        )
        for child in span_.children:
            walk_full(child, depth + 1)

    def walk_grouped(spans: list[Span], depth: int) -> None:
        groups: dict[str, list[Span]] = {}
        for span_ in spans:
            groups.setdefault(span_.name, []).append(span_)
        for name, members in groups.items():
            total = sum(member.seconds for member in members)
            if total < min_seconds and depth > 0:
                continue
            count = f" x{len(members)}" if len(members) > 1 else ""
            lines.append(
                f"{'  ' * depth}{name + count:<{max(1, 44 - 2 * depth)}}"
                f" {total * 1000:9.2f} ms"
            )
            walk_grouped(
                [
                    child
                    for member in members
                    for child in member.children
                ],
                depth + 1,
            )

    if full:
        for root in roots:
            walk_full(root, 0)
    else:
        walk_grouped(roots, 0)
    return "\n".join(lines) if lines else "(empty trace)"


# ----------------------------------------------------------------------
# Stats persistence (the cross-process surface behind ``repro stats``).


def stats_file_path() -> str:
    """Where the end-of-command metrics snapshot lives.

    An ``obs/`` subdirectory of the profile cache keeps the snapshot
    out of the cache's own entry accounting (``repro cache info``).
    """
    explicit = os.environ.get("REPRO_STATS_FILE")
    if explicit:
        return explicit
    from repro.profiles import cache as profile_cache

    return os.path.join(profile_cache.cache_dir(), "obs", "stats.json")


def write_stats(path: Optional[str] = None) -> Optional[str]:
    """Persist the current metrics snapshot; returns the path written,
    or None when there is nothing to record."""
    snapshot = metrics_snapshot()
    if not snapshot:
        return None
    path = path or stats_file_path()
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_stats(path: Optional[str] = None) -> Optional[dict[str, dict]]:
    """The last persisted metrics snapshot, or None if absent/bad."""
    path = path or stats_file_path()
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None
