"""Zero-dependency sampling wall-clock profiler.

A background daemon thread wakes every ``interval_ms`` and snapshots
the Python stacks of every other thread via
:func:`sys._current_frames`, aggregating identical stacks into a
counter.  Sampling observes threads from outside — the profiled code
runs unmodified at full speed, so overhead is just the sampler
thread's own wakeups (measured < 2% at the default 5 ms interval; see
DESIGN.md §15).

Output formats:

* **collapsed stacks** (:meth:`SamplingProfiler.collapsed_text`) —
  one ``frame;frame;frame count`` line per distinct stack, the
  interchange format every flamegraph tool reads;
* **flamegraph SVG** (:func:`flamegraph_svg`) — a self-contained
  SVG (no JavaScript, no external assets): depth-stacked rectangles,
  width proportional to samples, ``<title>`` tooltips with sample
  counts and percentages.

Frames are labelled ``path:function`` with paths shortened to their
``repro/``-relative form.  By default, stacks whose leaf frame is
parked in the interpreter's own wait machinery (``threading``,
``selectors``, ``queue``, executor workers waiting for jobs) are
dropped — a wall-clock profile of a mostly idle daemon would
otherwise be 99% scheduler noise; ``include_idle=True`` keeps them.

Wired as ``repro profile -- <subcommand>``, ``--profile`` on
``run``/``profile-suite``/``serve``, and ``GET /debug/profile`` on
the daemon.
"""

from __future__ import annotations

import html
import os
import sys
import threading
import time
import zlib
from collections import Counter
from typing import Optional

#: Default sampling interval (5 ms ≈ 200 Hz).
DEFAULT_INTERVAL_MS = 5.0

#: A stack whose leaf frame lives in one of these files is "idle":
#: parked in locks, selectors, or executor queues rather than running.
_IDLE_BASENAMES = {
    "threading.py",
    "selectors.py",
    "queue.py",
    "socket.py",
    "ssl.py",
}
_IDLE_SUFFIXES = (
    "concurrent/futures/thread.py",
    "multiprocessing/connection.py",
    "asyncio/base_events.py",
)


def _frame_label(frame) -> str:
    """``repro/serve/app.py:handle``-style label for one frame."""
    code = frame.f_code
    path = code.co_filename.replace(os.sep, "/")
    marker = path.rfind("/repro/")
    if marker >= 0:
        short = path[marker + 1:]
    else:
        short = path.rsplit("/", 1)[-1]
    return f"{short}:{code.co_name}"


def _is_idle(frame) -> bool:
    path = frame.f_code.co_filename.replace(os.sep, "/")
    if path.rsplit("/", 1)[-1] in _IDLE_BASENAMES:
        return True
    return path.endswith(_IDLE_SUFFIXES)


class SamplingProfiler:
    """Background wall-clock stack sampler (a context manager)."""

    def __init__(
        self,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        include_idle: bool = False,
    ) -> None:
        self.interval_s = max(0.0005, float(interval_ms) / 1000.0)
        self.include_idle = include_idle
        #: root-first frame tuples → sample count.
        self.samples: Counter[tuple[str, ...]] = Counter()
        self.total_samples = 0
        self.idle_samples = 0
        self.wall_seconds = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = 0.0

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._started = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.wall_seconds += time.perf_counter() - self._started

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own)

    def _sample(self, own: int) -> None:
        for thread_id, frame in sys._current_frames().items():
            if thread_id == own:
                continue
            if not self.include_idle and _is_idle(frame):
                self.idle_samples += 1
                continue
            stack: list[str] = []
            while frame is not None:
                stack.append(_frame_label(frame))
                frame = frame.f_back
            if not stack:
                continue
            stack.reverse()
            self.samples[tuple(stack)] += 1
            self.total_samples += 1

    # ------------------------------------------------------------------

    def collapsed(self) -> dict[str, int]:
        """``{"frame;frame;...": count}`` in deterministic order."""
        return {
            ";".join(stack): count
            for stack, count in sorted(self.samples.items())
        }

    def collapsed_text(self) -> str:
        """The collapsed-stack interchange format, one line each."""
        return "\n".join(
            f"{stack} {count}"
            for stack, count in self.collapsed().items()
        ) + ("\n" if self.samples else "")

    def flamegraph_svg(self, title: str = "repro profile") -> str:
        return flamegraph_svg(self.collapsed(), title=title)


# ----------------------------------------------------------------------
# Flamegraph rendering.

_FRAME_HEIGHT = 17
_WIDTH = 1200
_MIN_FRAME_PX = 0.5
_CHAR_PX = 6.8


class _Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.children: dict[str, "_Node"] = {}


def _frame_color(name: str) -> str:
    """A deterministic warm color per frame name (classic palette)."""
    digest = zlib.crc32(name.encode("utf-8"))
    red = 205 + digest % 50
    green = 60 + (digest >> 8) % 130
    blue = (digest >> 16) % 40
    return f"rgb({red},{green},{blue})"


def flamegraph_svg(
    collapsed: dict[str, int], title: str = "repro profile"
) -> str:
    """Self-contained flamegraph SVG from collapsed stacks.

    Root-first stacks merge into a trie; each node becomes one
    rectangle whose width is proportional to its inclusive sample
    count, stacked by depth, siblings in name order (deterministic
    output for identical profiles).  No scripts, no external assets —
    the file opens in any browser or image viewer.
    """
    root = _Node("all")
    for stack, count in sorted(collapsed.items()):
        count = int(count)
        root.value += count
        node = root
        for frame in stack.split(";"):
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _Node(frame)
            child.value += count
            node = child

    def depth_of(node: _Node) -> int:
        return 1 + max(
            (depth_of(child) for child in node.children.values()),
            default=0,
        )

    depth = depth_of(root)
    height = (depth + 2) * _FRAME_HEIGHT + 24
    total = root.value
    rects: list[str] = []

    def emit(node: _Node, x: float, width: float, level: int) -> None:
        if width < _MIN_FRAME_PX:
            return
        y = height - (level + 2) * _FRAME_HEIGHT
        label = html.escape(node.name)
        percent = 100.0 * node.value / total if total else 0.0
        tooltip = (
            f"{label} ({node.value} samples, {percent:.2f}%)"
        )
        rects.append(
            f'<g><title>{tooltip}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{width:.2f}" '
            f'height="{_FRAME_HEIGHT - 1}" '
            f'fill="{_frame_color(node.name)}" rx="1"/>'
        )
        max_chars = int(width / _CHAR_PX)
        if max_chars >= 3:
            text = node.name
            if len(text) > max_chars:
                text = text[: max_chars - 1] + "…"
            rects.append(
                f'<text x="{x + 2:.2f}" y="{y + 12}" '
                f'font-size="11" font-family="monospace">'
                f"{html.escape(text)}</text>"
            )
        rects.append("</g>")
        cursor = x
        for name in sorted(node.children):
            child = node.children[name]
            child_width = (
                width * child.value / node.value if node.value else 0.0
            )
            emit(child, cursor, child_width, level + 1)
            cursor += child_width

    if total:
        emit(root, 0.0, float(_WIDTH), 0)
    header = html.escape(
        f"{title} — {total} samples"
        if total
        else f"{title} — no samples"
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{_WIDTH}" height="{height}" '
        f'viewBox="0 0 {_WIDTH} {height}">\n'
        f'<rect width="{_WIDTH}" height="{height}" fill="#fdf6e3"/>\n'
        f'<text x="8" y="16" font-size="13" '
        f'font-family="monospace">{header}</text>\n'
        + "\n".join(rects)
        + "\n</svg>\n"
    )


def write_profile(
    profiler: SamplingProfiler,
    path: Optional[str] = None,
    title: str = "repro profile",
) -> tuple[str, str]:
    """Write the SVG and collapsed stacks; returns both paths.

    ``path`` names the SVG (default ``REPRO_PROFILE_FILE`` or
    ``repro-profile.svg``); collapsed stacks land next to it with a
    ``.collapsed`` extension.
    """
    svg_path = path or os.environ.get(
        "REPRO_PROFILE_FILE", ""
    ).strip() or "repro-profile.svg"
    base, _ = os.path.splitext(svg_path)
    collapsed_path = base + ".collapsed"
    with open(svg_path, "w", encoding="utf-8") as handle:
        handle.write(profiler.flamegraph_svg(title=title))
    with open(collapsed_path, "w", encoding="utf-8") as handle:
        handle.write(profiler.collapsed_text())
    return svg_path, collapsed_path
