"""Tail-sampled flight recorder and structured access log.

After-the-fact debuggability for the daemon: when a tenant reports
"my request was slow / failed five minutes ago", aggregates cannot
answer — only the request's own trace can.  The flight recorder keeps
a bounded in-memory ring of *completed* request traces with a
tail-sampling retention policy:

* **recent** — the last N requests, whatever their outcome (the
  rolling context window);
* **errors** — every request that failed or timed out, in its own
  ring so a flood of healthy traffic can never evict the interesting
  failures;
* **slow** — the top-K slowest requests seen so far (a min-heap on
  elapsed time), so the tail latency outliers survive even when they
  are rare.

A record is a plain JSON-able dict: trace/request ids, route, tenant,
status, elapsed, cache/batch/pool attributes, and the request's full
span tree (``spans``).  ``GET /debug/traces`` and ``GET /debug/slow``
expose the rings; ``repro traces`` renders them client-side.

The :class:`AccessLog` emits one structured JSON line per request —
trace id, tenant, status, cache hit, queue wait, batch size, elapsed —
through :func:`repro.obs.diag` (stderr) and, when a directory is
configured (``--access-log`` / ``REPRO_ACCESS_LOG_DIR``), into a
size-rotated on-disk log.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
from collections import deque
from typing import Optional

#: Default ring capacities: recent requests, retained failures, and
#: the slowest-requests heap.
DEFAULT_RECENT = 256
DEFAULT_ERRORS = 256
DEFAULT_SLOW = 32

#: Access-log rotation: roll ``access.log`` past this size, keeping
#: this many rolled files.
DEFAULT_LOG_BYTES = 4 * 1024 * 1024
DEFAULT_LOG_KEEP = 4

#: Environment override for the on-disk access-log directory.
ACCESS_LOG_ENV = "REPRO_ACCESS_LOG_DIR"


def find_span(spans: list[dict], name: str) -> Optional[dict]:
    """First span dict named ``name`` in a list of span trees."""
    stack = list(spans)
    while stack:
        node = stack.pop()
        if node.get("name") == name:
            return node
        stack.extend(node.get("children", []))
    return None


def build_record(
    *,
    trace_id: str,
    request_id: str,
    method: str,
    path: str,
    tenant: str,
    status: int,
    elapsed_ms: float,
    spans: list[dict],
    name: Optional[str] = None,
    cache: Optional[str] = None,
    error: Optional[str] = None,
    timeout: bool = False,
) -> dict:
    """One flight-recorder record for a completed request.

    Pulls the scheduling attributes (queue wait, batch size, pool
    shard, coalescing links) out of the span tree so every record
    answers "where did the time go" without re-walking spans.
    """
    record: dict = {
        "trace_id": trace_id,
        "request_id": request_id,
        "method": method,
        "path": path,
        "tenant": tenant,
        "status": int(status),
        "elapsed_ms": round(float(elapsed_ms), 3),
        "error": error,
        "timeout": bool(timeout),
        "spans": spans,
    }
    if name is not None:
        record["name"] = name
    if cache is not None:
        record["cache"] = cache
    request = find_span(spans, "serve.request")
    if request is not None:
        attrs = request.get("attrs", {})
        for key in ("coalesced", "link_trace", "link_job", "parent_id"):
            if key in attrs:
                record[key] = attrs[key]
    batch = find_span(spans, "serve.batch")
    if batch is not None:
        attrs = batch.get("attrs", {})
        record["queue_wait_ms"] = attrs.get("queue_wait_ms")
        record["batch_size"] = attrs.get("batch_size")
    analyze = find_span(spans, "serve.analyze")
    if analyze is not None and "pool_shard" in analyze.get("attrs", {}):
        record["pool_shard"] = analyze["attrs"]["pool_shard"]
    return record


class FlightRecorder:
    """Bounded, tail-sampled ring of completed request records."""

    def __init__(
        self,
        recent: int = DEFAULT_RECENT,
        errors: int = DEFAULT_ERRORS,
        slow: int = DEFAULT_SLOW,
    ) -> None:
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=max(1, recent))
        self._errors: deque[dict] = deque(maxlen=max(1, errors))
        #: min-heap of (elapsed_ms, seq, record): the root is the
        #: fastest of the retained slowest, evicted first.
        self._slow: list[tuple[float, int, dict]] = []
        self._slow_cap = max(1, slow)
        self._seq = 0
        self.recorded = 0

    def record(self, record: dict) -> None:
        """Retain one completed request (cheap: O(log slow-cap))."""
        with self._lock:
            self._seq += 1
            record = dict(record)
            record["seq"] = self._seq
            self.recorded += 1
            self._recent.append(record)
            if (
                record.get("timeout")
                or record.get("error")
                or record.get("status", 200) >= 400
            ):
                self._errors.append(record)
            item = (
                float(record.get("elapsed_ms") or 0.0),
                self._seq,
                record,
            )
            if len(self._slow) < self._slow_cap:
                heapq.heappush(self._slow, item)
            elif item[0] > self._slow[0][0]:
                heapq.heapreplace(self._slow, item)

    def traces(self, limit: Optional[int] = None) -> list[dict]:
        """Most recent records first."""
        with self._lock:
            records = list(self._recent)
        records.reverse()
        return records[: limit] if limit else records

    def errors(self, limit: Optional[int] = None) -> list[dict]:
        """Most recent retained failures first."""
        with self._lock:
            records = list(self._errors)
        records.reverse()
        return records[: limit] if limit else records

    def slow(self, limit: Optional[int] = None) -> list[dict]:
        """Slowest retained requests, slowest first."""
        with self._lock:
            items = sorted(self._slow, reverse=True)
        records = [record for _, _, record in items]
        return records[: limit] if limit else records

    def stats(self) -> dict:
        """Point-in-time retention stats (gauges and ``/debug``)."""
        with self._lock:
            slowest = max(
                (elapsed for elapsed, _, _ in self._slow),
                default=0.0,
            )
            threshold = self._slow[0][0] if (
                len(self._slow) >= self._slow_cap
            ) else 0.0
            return {
                "recorded": self.recorded,
                "recent": len(self._recent),
                "errors": len(self._errors),
                "slow": len(self._slow),
                "slowest_ms": round(slowest, 3),
                "slow_threshold_ms": round(threshold, 3),
            }

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._errors.clear()
            self._slow.clear()


class AccessLog:
    """One structured JSON line per request, optionally on disk.

    The stderr line (via :func:`repro.obs.diag`) is always produced by
    the caller from :meth:`line`; when a directory is set the same
    line is appended to ``access.log`` there, rotated by size
    (``access.log`` → ``access.log.1`` → ... up to ``keep``).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_bytes: int = DEFAULT_LOG_BYTES,
        keep: int = DEFAULT_LOG_KEEP,
    ) -> None:
        self.directory = directory or os.environ.get(
            ACCESS_LOG_ENV
        ) or None
        self.max_bytes = max(4096, max_bytes)
        self.keep = max(1, keep)
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0

    @property
    def path(self) -> Optional[str]:
        if not self.directory:
            return None
        return os.path.join(self.directory, "access.log")

    @staticmethod
    def line(entry: dict) -> str:
        return json.dumps(entry, sort_keys=True)

    def log(self, entry: dict) -> str:
        """Render ``entry``; append to the on-disk log when enabled."""
        line = self.line(entry)
        if self.directory:
            with self._lock:
                try:
                    self._write(line)
                except OSError:
                    # A full or vanished disk must never fail the
                    # request that was merely being logged.
                    pass
        return line

    def _write(self, line: str) -> None:
        if self._handle is None:
            os.makedirs(self.directory, exist_ok=True)
            self._handle = open(
                self.path, "a", encoding="utf-8"
            )
            self._size = self._handle.tell()
        self._handle.write(line + "\n")
        self._size += len(line) + 1
        if self._size >= self.max_bytes:
            self._handle.flush()
            self._handle.close()
            self._handle = None
            self._rotate()

    def _rotate(self) -> None:
        base = self.path
        for index in range(self.keep - 1, 0, -1):
            older = f"{base}.{index}"
            newer = f"{base}.{index + 1}"
            if os.path.exists(older):
                os.replace(older, newer)
        if os.path.exists(base):
            os.replace(base, f"{base}.1")

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None


def access_log_info() -> dict:
    """``repro cache info`` summary of the access-log directory."""
    directory = os.environ.get(ACCESS_LOG_ENV, "").strip() or None
    info: dict = {
        "directory": directory,
        "enabled": bool(directory),
        "files": 0,
        "bytes": 0,
    }
    if directory and os.path.isdir(directory):
        for entry in os.listdir(directory):
            if not entry.startswith("access.log"):
                continue
            try:
                info["bytes"] += os.path.getsize(
                    os.path.join(directory, entry)
                )
                info["files"] += 1
            except OSError:
                continue
    return info
