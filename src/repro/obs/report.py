"""The ``repro report`` HTML dashboard over the run ledger.

Self-contained and zero-dependency: one HTML file with inline CSS and
inline SVG sparklines, no scripts, no external assets — it renders from
a CI artifact or an email attachment exactly as it does locally.

Content, from the ledger's run history (oldest → newest):

* a stat-tile row (runs recorded, experiments tracked, latest run);
* per-experiment **score history** — every tracked accuracy metric with
  its latest value, its delta against the previous run and against the
  committed baseline, and a sparkline across runs;
* **stage wall-times** — the same treatment for span-derived stage
  seconds (profiling, per-experiment, analysis stages);
* the latest run's **counters** (cache traffic, solver dispatches,
  interpreter totals).

Every sparkline is a single blue series (no legend needed — the row
names it); deltas carry a ▲/▼ glyph so drift never reads by color
alone; tables double as the accessible/table view of every chart.
Light and dark render from the same palette roles via
``prefers-color-scheme``.
"""

from __future__ import annotations

import html
from typing import Mapping, Optional, Sequence

from repro.obs.ledger import RunDetail

#: Metrics-per-experiment cap so figure4's 60 per-program rows do not
#: drown the dashboard; rows whose metric path contains AVERAGE always
#: survive the cut.
MAX_METRIC_ROWS = 24
MAX_STAGE_ROWS = 48
MAX_COUNTER_ROWS = 80

#: Experiments whose rows are one-per-program (or tiny) coverage
#: gauges: every row renders, uncapped, so the suite-XL tier and fuzz
#: runs chart completely instead of truncating at MAX_METRIC_ROWS.
FULL_COVERAGE_EXPERIMENTS = frozenset({"suite", "suite_xl", "fuzz"})

#: The ``repro explain --record`` experiment, rendered as one
#: sub-table per program (grouped by the metric prefix before the
#: first dot) showing the gated accuracy rows.
ATTRIBUTION_EXPERIMENT = "attribution"

#: Baseline drift below this is rendered as unchanged.
DISPLAY_TOLERANCE = 1e-9

_STYLE = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --drift: #d03b3b;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --drift: #e66767;
    --border: rgba(255, 255, 255, 0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 24px;
  background: var(--page);
  color: var(--ink-1);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 980px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
h3 { font-size: 14px; margin: 20px 0 6px; color: var(--ink-1); }
h4 { font-size: 13px; margin: 14px 0 4px; color: var(--ink-2); }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 16px;
  min-width: 150px;
}
.tile .label {
  color: var(--ink-2);
  font-size: 12px;
  text-transform: uppercase;
  letter-spacing: 0.04em;
}
.tile .value { font-size: 24px; margin-top: 2px; }
.tile .note { color: var(--muted); font-size: 12px; }
table {
  border-collapse: collapse;
  width: 100%;
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
}
th, td {
  text-align: left;
  padding: 5px 10px;
  border-top: 1px solid var(--grid);
  vertical-align: middle;
}
thead th {
  border-top: none;
  color: var(--ink-2);
  font-weight: 600;
  font-size: 12px;
}
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
td.spark { width: 150px; }
.delta { font-variant-numeric: tabular-nums; white-space: nowrap; }
.delta.changed { color: var(--drift); font-weight: 600; }
.delta.flat { color: var(--muted); }
.more { color: var(--muted); font-size: 12px; margin: 4px 0 0; }
svg.spark { display: block; }
svg.spark polyline {
  fill: none;
  stroke: var(--series-1);
  stroke-width: 2;
  stroke-linecap: round;
  stroke-linejoin: round;
}
svg.spark line.floor { stroke: var(--grid); stroke-width: 1; }
svg.spark circle { fill: var(--series-1); }
footer { color: var(--muted); font-size: 12px; margin-top: 32px; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def sparkline_svg(
    values: Sequence[float], title: str, width: int = 140, height: int = 30
) -> str:
    """Inline SVG sparkline over ``values`` (oldest → newest).

    A 2px single-hue line with a dot on the latest value and a hairline
    floor; a ``<title>`` carries the min/max/latest reading so the
    series is hoverable and readable without color.
    """
    if not values:
        return ""
    pad = 3.0
    low, high = min(values), max(values)
    spread = high - low
    inner_w = width - 2 * pad
    inner_h = height - 2 * pad

    def x_at(index: int) -> float:
        if len(values) == 1:
            return pad + inner_w / 2
        return pad + inner_w * index / (len(values) - 1)

    def y_at(value: float) -> float:
        if spread == 0.0:
            return height / 2
        return pad + inner_h * (1.0 - (value - low) / spread)

    points = " ".join(
        f"{x_at(index):.1f},{y_at(value):.1f}"
        for index, value in enumerate(values)
    )
    last_x, last_y = x_at(len(values) - 1), y_at(values[-1])
    label = (
        f"{title}: {len(values)} runs, "
        f"min {_format_number(low)}, max {_format_number(high)}, "
        f"latest {_format_number(values[-1])}"
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_esc(label)}">'
        f"<title>{_esc(label)}</title>"
        f'<line class="floor" x1="{pad}" y1="{height - 1}" '
        f'x2="{width - pad}" y2="{height - 1}"/>'
        f'<polyline points="{points}"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5"/>'
        f"</svg>"
    )


def _delta_cell(
    current: Optional[float], reference: Optional[float]
) -> str:
    """A signed delta against a reference value; drift is marked with a
    ▲/▼ glyph (never color alone) and the drift color."""
    if current is None or reference is None:
        return '<td class="num"><span class="delta flat">–</span></td>'
    delta = current - reference
    if abs(delta) <= DISPLAY_TOLERANCE:
        return '<td class="num"><span class="delta flat">·</span></td>'
    arrow = "▲" if delta > 0 else "▼"
    return (
        f'<td class="num"><span class="delta changed">{arrow} '
        f"{delta:+.6g}</span></td>"
    )


def _select_metrics(
    metrics: Sequence[str], experiment: Optional[str] = None
) -> tuple[list[str], int]:
    """Keep the dashboard readable: prefer AVERAGE rows, cap the rest.

    Per-program coverage experiments (suite tiers, fuzz) are exempt
    from the cap — their whole point is one row per program, and
    hiding half the XL tier reads as "covered" when it is not.
    """
    averages = [name for name in metrics if "AVERAGE" in name]
    if averages:
        return averages, len(metrics) - len(averages)
    if experiment in FULL_COVERAGE_EXPERIMENTS:
        return list(metrics), 0
    if len(metrics) > MAX_METRIC_ROWS:
        return list(metrics[:MAX_METRIC_ROWS]), len(metrics) - MAX_METRIC_ROWS
    return list(metrics), 0


def _history_rows(
    details: Sequence[RunDetail],
    values_of,
) -> dict[str, list[tuple[int, float]]]:
    """``{name: [(run id, value), ...]}`` oldest → newest."""
    history: dict[str, list[tuple[int, float]]] = {}
    for detail in details:
        for name, value in values_of(detail).items():
            history.setdefault(name, []).append((detail.row.id, value))
    return history


def _metric_table(
    history: Mapping[str, list[tuple[int, float]]],
    names: Sequence[str],
    baseline: Optional[Mapping[str, float]],
    value_formatter=_format_number,
) -> str:
    header_baseline = (
        '<th class="num">Δ baseline</th>' if baseline is not None else ""
    )
    rows = [
        "<table>",
        "<thead><tr><th>metric</th>"
        '<th class="num">latest</th><th class="num">Δ prev</th>'
        f"{header_baseline}<th>history</th></tr></thead><tbody>",
    ]
    for name in names:
        series = history.get(name, [])
        if not series:
            continue
        values = [value for _, value in series]
        latest = values[-1]
        previous = values[-2] if len(values) > 1 else None
        cells = [
            f"<td>{_esc(name)}</td>",
            f'<td class="num">{value_formatter(latest)}</td>',
            _delta_cell(latest, previous),
        ]
        if baseline is not None:
            cells.append(_delta_cell(latest, baseline.get(name)))
        cells.append(
            f'<td class="spark">{sparkline_svg(values, name)}</td>'
        )
        rows.append("<tr>" + "".join(cells) + "</tr>")
    rows.append("</tbody></table>")
    return "\n".join(rows)


def _seconds(value: float) -> str:
    return f"{value:.3f}s"


def _attribution_sections(
    history: Mapping[str, list[tuple[int, float]]],
    baseline: Optional[Mapping[str, float]],
) -> list[str]:
    """Per-program heuristic-accuracy sub-tables for the
    ``attribution`` experiment.

    Metric names group by the program prefix before the first dot
    (``compress.loop.missrate`` → program ``compress``); each program
    shows its gated rows — every ``*.missrate`` plus the attributed
    error — with the static/dynamic coverage counts noted rather than
    tabulated.
    """
    by_program: dict[str, list[str]] = {}
    for name in sorted(history):
        program = name.split(".", 1)[0]
        by_program.setdefault(program, []).append(name)
    parts: list[str] = []
    if not by_program:
        parts.append('<p class="sub">(no attribution rows yet)</p>')
        return parts
    for program in sorted(by_program):
        names = by_program[program]
        shown = [
            name
            for name in names
            if name.endswith(".missrate")
            or name.endswith(".attributed_error")
        ]
        hidden = len(names) - len(shown)
        parts.append(f"<h4>{_esc(program)}</h4>")
        parts.append(_metric_table(history, shown, baseline))
        if hidden > 0:
            parts.append(
                f'<p class="more">… {hidden} coverage rows '
                f"(branch/execution counts) in the ledger</p>"
            )
    return parts


def build_report(
    details: Sequence[RunDetail],
    baseline: Optional[Mapping[str, Mapping[str, float]]] = None,
    baseline_label: str = "",
) -> str:
    """Render the ledger dashboard as one self-contained HTML page.

    ``details`` must be ordered oldest → newest; ``baseline`` is the
    committed score map (experiment → metric → value) when available.
    """
    details = list(details)
    latest = details[-1] if details else None
    experiments = sorted(
        {name for detail in details for name in detail.scores}
    )

    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">',
        "<title>repro run ledger</title>",
        f"<style>{_STYLE}</style>",
        "</head><body><main>",
        "<h1>repro — run ledger</h1>",
        '<p class="sub">Longitudinal accuracy &amp; performance history '
        "of the static-estimator reproduction. Deltas compare the "
        "newest run against the previous one"
        + (" and the committed baseline" if baseline is not None else "")
        + "; any movement is drift worth reading.</p>",
    ]

    # Stat tiles.
    tiles = [
        ("runs recorded", str(len(details)), ""),
        ("experiments tracked", str(len(experiments)), ""),
    ]
    if latest is not None:
        tiles.append(
            (
                "latest run",
                f"#{latest.row.id}",
                f"{latest.row.kind} · {_esc(latest.row.started_at)}"
                + (
                    f" · {_esc(latest.row.git_sha)}"
                    if latest.row.git_sha
                    else ""
                ),
            )
        )
    parts.append('<div class="tiles">')
    for label, value, note in tiles:
        parts.append(
            f'<div class="tile"><div class="label">{label}</div>'
            f'<div class="value">{value}</div>'
            + (f'<div class="note">{note}</div>' if note else "")
            + "</div>"
        )
    parts.append("</div>")

    # Score history, one block per experiment.
    parts.append("<h2>Estimator accuracy history</h2>")
    if not experiments:
        parts.append('<p class="sub">(no score rows recorded yet)</p>')
    for experiment in experiments:
        history = _history_rows(
            details, lambda detail, e=experiment: detail.scores.get(e, {})
        )
        experiment_baseline = (
            baseline.get(experiment) if baseline is not None else None
        )
        parts.append(f"<h3>{_esc(experiment)}</h3>")
        if experiment == ATTRIBUTION_EXPERIMENT:
            parts.extend(
                _attribution_sections(history, experiment_baseline)
            )
            continue
        names, hidden = _select_metrics(sorted(history), experiment)
        parts.append(
            _metric_table(
                history,
                names,
                experiment_baseline
                if baseline is not None
                else None,
            )
        )
        if hidden > 0:
            parts.append(
                f'<p class="more">… {hidden} more metrics in the '
                f"ledger (repro history show)</p>"
            )

    # Stage wall-times.
    stage_history = _history_rows(details, lambda detail: detail.stages)
    if stage_history:
        parts.append("<h2>Stage wall-times</h2>")
        stage_names = sorted(stage_history)
        hidden = max(0, len(stage_names) - MAX_STAGE_ROWS)
        parts.append(
            _metric_table(
                stage_history,
                stage_names[:MAX_STAGE_ROWS],
                None,
                value_formatter=_seconds,
            )
        )
        if hidden:
            parts.append(
                f'<p class="more">… {hidden} more stages in the '
                f"ledger</p>"
            )

    # Latest counters.
    counters = latest.counters if latest is not None else {}
    if not counters:
        for detail in reversed(details):
            if detail.counters:
                counters = detail.counters
                break
    if counters:
        parts.append("<h2>Counters (latest recorded run)</h2>")
        names = sorted(counters)[:MAX_COUNTER_ROWS]
        rows = [
            "<table>",
            '<thead><tr><th>counter</th><th class="num">value</th>'
            "</tr></thead><tbody>",
        ]
        for name in names:
            rows.append(
                f"<tr><td>{_esc(name)}</td>"
                f'<td class="num">{_format_number(counters[name])}'
                f"</td></tr>"
            )
        rows.append("</tbody></table>")
        parts.append("\n".join(rows))

    footer_bits = ["generated by <code>repro report</code>"]
    if baseline is not None and baseline_label:
        footer_bits.append(f"baseline: {_esc(baseline_label)}")
    parts.append(f"<footer>{' · '.join(footer_bits)}</footer>")
    parts.append("</main></body></html>")
    return "\n".join(parts)


__all__ = ["build_report", "sparkline_svg"]
