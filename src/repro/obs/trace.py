"""Hierarchical spans with contextvar parent tracking.

A span is one timed region of work (``interp.run``, ``analysis.intra``,
``experiment:table2``); spans opened while another span is active
become its children, so a run produces a tree mirroring the call
structure across the pipeline's layers.

Tracing is *off* by default.  ``REPRO_TRACE`` (or ``--trace`` on the
CLI, or :func:`enable_tracing`) turns it on; while off, :func:`span`
returns a shared no-op singleton, so the cost of an instrumentation
point is one module-global read and one function call — effectively
zero next to the work being traced.  ``--timings`` forces tracing on
for the duration of a command (:func:`forced_tracing`) because the
timing reports are *views over the trace*, not a parallel mechanism.

Clocks: spans measure duration with :func:`time.perf_counter` and
record their start as an offset from the process's trace epoch, so
sibling ordering is meaningful within a process but wall-clock dates
never enter the trace (keeping exports diffable).

Request scoping: the serving daemon needs per-request span trees even
when process-wide tracing is off.  :func:`request_buffer` installs a
:class:`TraceBuffer` in the current context; while one is active,
:func:`span` records real spans whose finished roots land in the
buffer instead of the process-global root list.  Because the buffer
lives in a contextvar, it follows the request across ``await`` points,
and a ``contextvars.copy_context()`` hop carries it onto worker
threads (the micro-batching scheduler does exactly that), so spans
opened on a worker still parent under the request span.
"""

from __future__ import annotations

import os
import re
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Optional

_TRUTHY = {"1", "yes", "on", "true"}

#: Process trace epoch: span starts are offsets from this instant.
_EPOCH = time.perf_counter()

_ENABLED: bool = (
    os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY
)

#: The innermost open span of the current (thread/task) context.
_CURRENT: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Finished top-level spans, in completion order.
_ROOTS: list["Span"] = []

#: The request-scoped trace buffer of the current context (serving).
_BUFFER: ContextVar[Optional["TraceBuffer"]] = ContextVar(
    "repro_obs_trace_buffer", default=None
)


def tracing_enabled() -> bool:
    """Whether spans are being recorded."""
    return _ENABLED


def enable_tracing() -> None:
    """Turn span recording on for this process."""
    global _ENABLED
    _ENABLED = True


def disable_tracing() -> None:
    """Turn span recording off (open spans still close normally)."""
    global _ENABLED
    _ENABLED = False


def reset_trace() -> None:
    """Drop every recorded span (tests and worker task hygiene)."""
    _ROOTS.clear()
    _CURRENT.set(None)


@contextmanager
def forced_tracing(active: bool = True):
    """Temporarily force tracing on (used by ``--timings`` views)."""
    if not active or _ENABLED:
        yield
        return
    enable_tracing()
    try:
        yield
    finally:
        disable_tracing()


class Span:
    """One timed region; children are spans opened while it is open."""

    __slots__ = ("name", "attrs", "start", "seconds", "children", "_token")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.seconds = 0.0
        self.children: list["Span"] = []
        self._token = None

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span (cache hits, sizes, ...)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self.start = time.perf_counter() - _EPOCH
        return self

    def __exit__(self, *_exc) -> None:
        self.seconds = (time.perf_counter() - _EPOCH) - self.start
        _CURRENT.reset(self._token)
        self._token = None
        parent = _CURRENT.get()
        if parent is not None:
            parent.children.append(self)
            return
        buffer = _BUFFER.get()
        if buffer is not None:
            buffer.roots.append(self)
            if _ENABLED:
                _ROOTS.append(self)
        else:
            _ROOTS.append(self)

    # ------------------------------------------------------------------
    # Serialization (worker→parent payloads and JSONL export).

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        if self.children:
            payload["children"] = [
                child.to_dict() for child in self.children
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span_ = cls(str(payload["name"]), dict(payload.get("attrs", {})))
        span_.start = float(payload.get("start", 0.0))
        span_.seconds = float(payload.get("seconds", 0.0))
        span_.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return span_


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **_attrs: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attrs: object):
    """Open a span named ``name``.

    Records a real span when process tracing is on *or* a request
    buffer is active in this context; a shared no-op otherwise.
    """
    if not _ENABLED and _BUFFER.get() is None:
        return _NOOP
    return Span(name, attrs)


def current_span():
    """The innermost open span (a no-op stand-in when none/disabled)."""
    if not _ENABLED and _BUFFER.get() is None:
        return _NOOP
    return _CURRENT.get() or _NOOP


# ----------------------------------------------------------------------
# Request-scoped buffers and trace identity (the serving layer).


class TraceBuffer:
    """Collects one request's finished root spans.

    Installed in the context by :func:`request_buffer`; while active,
    :func:`span` records real spans regardless of the process-wide
    tracing switch, and top-level spans land in :attr:`roots` instead
    of (or, with tracing on, in addition to) the global root list.
    """

    __slots__ = ("trace_id", "roots")

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.roots: list[Span] = []


@contextmanager
def request_buffer(trace_id: Optional[str] = None):
    """Scope a :class:`TraceBuffer` to the current context."""
    buffer = TraceBuffer(trace_id)
    token = _BUFFER.set(buffer)
    try:
        yield buffer
    finally:
        _BUFFER.reset(token)


def current_buffer() -> Optional[TraceBuffer]:
    """The active request buffer, if any."""
    return _BUFFER.get()


def current_trace_id() -> Optional[str]:
    """Trace id of the active request buffer (None outside one)."""
    buffer = _BUFFER.get()
    return buffer.trace_id if buffer is not None else None


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span/request id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


#: W3C Trace Context ``traceparent``: version-traceid-parentid-flags.
_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def parse_traceparent(value: str) -> Optional[tuple[str, str]]:
    """``(trace_id, parent_span_id)`` from a ``traceparent`` header.

    Returns None for anything malformed, the all-zero ids, or the
    reserved version ``ff`` — callers then mint a fresh trace id
    rather than propagating garbage.
    """
    match = _TRACEPARENT.match(value.strip().lower())
    if match is None:
        return None
    version, trace_id, parent_id, _flags = match.groups()
    if version == "ff":
        return None
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id, parent_id


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a ``traceparent`` header (version 00, sampled flag)."""
    return f"00-{trace_id}-{span_id}-01"


def attach_span(span_: Span) -> None:
    """Adopt an already-finished span (e.g. one deserialized from a
    worker) as a child of the current span, or as a root."""
    parent = _CURRENT.get()
    if parent is not None:
        parent.children.append(span_)
    else:
        _ROOTS.append(span_)


def trace_roots() -> list[Span]:
    """Finished top-level spans, in completion order."""
    return list(_ROOTS)


def walk_spans(roots: Optional[list[Span]] = None):
    """Yield ``(span, depth)`` over the trees in pre-order."""
    stack = [
        (root, 0)
        for root in reversed(roots if roots is not None else _ROOTS)
    ]
    while stack:
        node, depth = stack.pop()
        yield node, depth
        for child in reversed(node.children):
            stack.append((child, depth + 1))


def span_names(roots: Optional[list[Span]] = None) -> set[str]:
    """The set of distinct span names in the trace."""
    return {node.name for node, _ in walk_spans(roots)}
