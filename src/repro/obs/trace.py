"""Hierarchical spans with contextvar parent tracking.

A span is one timed region of work (``interp.run``, ``analysis.intra``,
``experiment:table2``); spans opened while another span is active
become its children, so a run produces a tree mirroring the call
structure across the pipeline's layers.

Tracing is *off* by default.  ``REPRO_TRACE`` (or ``--trace`` on the
CLI, or :func:`enable_tracing`) turns it on; while off, :func:`span`
returns a shared no-op singleton, so the cost of an instrumentation
point is one module-global read and one function call — effectively
zero next to the work being traced.  ``--timings`` forces tracing on
for the duration of a command (:func:`forced_tracing`) because the
timing reports are *views over the trace*, not a parallel mechanism.

Clocks: spans measure duration with :func:`time.perf_counter` and
record their start as an offset from the process's trace epoch, so
sibling ordering is meaningful within a process but wall-clock dates
never enter the trace (keeping exports diffable).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Optional

_TRUTHY = {"1", "yes", "on", "true"}

#: Process trace epoch: span starts are offsets from this instant.
_EPOCH = time.perf_counter()

_ENABLED: bool = (
    os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY
)

#: The innermost open span of the current (thread/task) context.
_CURRENT: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Finished top-level spans, in completion order.
_ROOTS: list["Span"] = []


def tracing_enabled() -> bool:
    """Whether spans are being recorded."""
    return _ENABLED


def enable_tracing() -> None:
    """Turn span recording on for this process."""
    global _ENABLED
    _ENABLED = True


def disable_tracing() -> None:
    """Turn span recording off (open spans still close normally)."""
    global _ENABLED
    _ENABLED = False


def reset_trace() -> None:
    """Drop every recorded span (tests and worker task hygiene)."""
    _ROOTS.clear()
    _CURRENT.set(None)


@contextmanager
def forced_tracing(active: bool = True):
    """Temporarily force tracing on (used by ``--timings`` views)."""
    if not active or _ENABLED:
        yield
        return
    enable_tracing()
    try:
        yield
    finally:
        disable_tracing()


class Span:
    """One timed region; children are spans opened while it is open."""

    __slots__ = ("name", "attrs", "start", "seconds", "children", "_token")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.seconds = 0.0
        self.children: list["Span"] = []
        self._token = None

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span (cache hits, sizes, ...)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self.start = time.perf_counter() - _EPOCH
        return self

    def __exit__(self, *_exc) -> None:
        self.seconds = (time.perf_counter() - _EPOCH) - self.start
        _CURRENT.reset(self._token)
        self._token = None
        parent = _CURRENT.get()
        if parent is not None:
            parent.children.append(self)
        else:
            _ROOTS.append(self)

    # ------------------------------------------------------------------
    # Serialization (worker→parent payloads and JSONL export).

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        if self.children:
            payload["children"] = [
                child.to_dict() for child in self.children
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span_ = cls(str(payload["name"]), dict(payload.get("attrs", {})))
        span_.start = float(payload.get("start", 0.0))
        span_.seconds = float(payload.get("seconds", 0.0))
        span_.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return span_


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **_attrs: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attrs: object):
    """Open a span named ``name`` (no-op when tracing is disabled)."""
    if not _ENABLED:
        return _NOOP
    return Span(name, attrs)


def current_span():
    """The innermost open span (a no-op stand-in when none/disabled)."""
    if not _ENABLED:
        return _NOOP
    return _CURRENT.get() or _NOOP


def attach_span(span_: Span) -> None:
    """Adopt an already-finished span (e.g. one deserialized from a
    worker) as a child of the current span, or as a root."""
    parent = _CURRENT.get()
    if parent is not None:
        parent.children.append(span_)
    else:
        _ROOTS.append(span_)


def trace_roots() -> list[Span]:
    """Finished top-level spans, in completion order."""
    return list(_ROOTS)


def walk_spans(roots: Optional[list[Span]] = None):
    """Yield ``(span, depth)`` over the trees in pre-order."""
    stack = [
        (root, 0)
        for root in reversed(roots if roots is not None else _ROOTS)
    ]
    while stack:
        node, depth = stack.pop()
        yield node, depth
        for child in reversed(node.children):
            stack.append((child, depth + 1))


def span_names(roots: Optional[list[Span]] = None) -> set[str]:
    """The set of distinct span names in the trace."""
    return {node.name for node, _ in walk_spans(roots)}
