"""Table 2: intra-procedural weight matching on the strchr example.

The paper profiles strchr called on ("abc", 'a') and ("abc", 'b'),
estimates block counts with the *smart* heuristic, and scores the
estimate at 20% and 60% cutoffs — 100% and 88% (= 7/8) respectively.
The table ranks the five interesting blocks (while, if, return1, incr,
return2); the entry block, whose count always equals the invocation
count, is left out exactly as in the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.examples import (
    STRCHR_HARNESS,
    STRCHR_SOURCE,
    paper_block_names,
    strchr_session,
)
from repro.experiments.render import percent, text_table
from repro.interp.machine import Machine
from repro.metrics.weight_matching import weight_matching_score
from repro.profiles.cache import cached_profile_for_source
from repro.profiles.profile import Profile


@dataclass
class Table2Result:
    block_names: dict[int, str]
    actual: dict[int, float]
    estimated: dict[int, float]
    score_20: float
    score_60: float

    def render(self) -> str:
        order = sorted(
            self.actual, key=lambda b: (-self.actual[b], b)
        )
        rows = [
            (
                self.block_names[block_id],
                f"{self.actual[block_id]:g}",
                f"{self.estimated[block_id]:g}",
            )
            for block_id in order
        ]
        table = text_table(
            ["Block", "Actual", "Estimate"],
            rows,
            title=(
                "Table 2: weight matching on strchr "
                "(searching \"abc\" for 'a' and for 'b')"
            ),
        )
        return (
            f"{table}\n\n"
            f"score at 20% cutoff: {percent(self.score_20)}\n"
            f"score at 60% cutoff: {percent(self.score_60)}"
        )


def run_table2() -> Table2Result:
    """Profile the strchr harness and score the smart estimate."""
    session = strchr_session()
    program = session.program

    def interpret() -> Profile:
        fresh = Profile("strchr-example")
        result = Machine(program, profile=fresh).run()
        if result.status != 0:
            raise RuntimeError("strchr harness failed")
        return fresh

    profile = cached_profile_for_source(
        STRCHR_SOURCE + "\n" + STRCHR_HARNESS, "", interpret
    )
    names = paper_block_names(program)
    cfg = program.cfg("my_strchr")
    estimates = session.intra_estimates("smart")["my_strchr"]

    # The estimate stays per-invocation (the paper's table shows the
    # one-entry-normalized estimate against two calls' worth of actual
    # counts); weight matching only compares rankings, so the scale
    # difference is irrelevant.
    actual: dict[int, float] = {}
    estimated: dict[int, float] = {}
    for block in cfg:
        if block.block_id == cfg.entry_id:
            continue  # The paper's table omits the entry block.
        actual[block.block_id] = profile.block_counts["my_strchr"].get(
            block.block_id, 0.0
        )
        estimated[block.block_id] = estimates[block.block_id]
    score_20 = weight_matching_score(estimated, actual, 0.20)
    score_60 = weight_matching_score(estimated, actual, 0.60)
    return Table2Result(names, actual, estimated, score_20, score_60)
