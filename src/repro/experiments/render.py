"""Plain-text rendering helpers shared by the experiment modules.

Every experiment renders to monospace text — tables for the paper's
tables, horizontal bar charts for its figures — so results can be read
in a terminal and diffed in CI.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def text_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    rendered_rows = []
    for row in rows:
        rendered = [str(cell) for cell in row]
        if len(rendered) != columns:
            raise ValueError("row width does not match headers")
        rendered_rows.append(rendered)
        for index, cell in enumerate(rendered):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(widths[index])
        for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for rendered in rendered_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[index]) if _is_numeric(cell) else
                cell.ljust(widths[index])
                for index, cell in enumerate(rendered)
            )
        )
    return "\n".join(lines)


def _is_numeric(cell: str) -> bool:
    stripped = cell.rstrip("%x")
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def percent(value: float, digits: int = 1) -> str:
    """Format a 0..1 score as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def bar_chart(
    series: Mapping[str, Mapping[str, float]],
    value_format: str = "{:6.1f}",
    width: int = 40,
    title: str = "",
    maximum: float | None = None,
) -> str:
    """Grouped horizontal bars: ``series[group][label] = value``.

    Values are scaled to ``maximum`` (default: the largest value).
    """
    lines = []
    if title:
        lines.append(title)
    all_values = [
        value for group in series.values() for value in group.values()
    ]
    scale_max = maximum if maximum is not None else max(all_values, default=1.0)
    if scale_max <= 0:
        scale_max = 1.0
    label_width = max(
        (len(label) for group in series.values() for label in group),
        default=4,
    )
    for group_name, group in series.items():
        lines.append(f"{group_name}:")
        for label, value in group.items():
            bar = "#" * max(int(round(width * value / scale_max)), 0)
            lines.append(
                f"  {label.ljust(label_width)} "
                f"{value_format.format(value)} |{bar}"
            )
    return "\n".join(lines)


def series_table(
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    values: Mapping[str, Mapping[str, float]],
    formatter=percent,
    corner: str = "program",
) -> str:
    """Matrix rendering: ``values[row][column]`` with shared columns."""
    headers = [corner] + list(column_labels)
    rows = []
    for row_label in row_labels:
        row: list[object] = [row_label]
        for column_label in column_labels:
            value = values.get(row_label, {}).get(column_label)
            row.append("-" if value is None else formatter(value))
        rows.append(row)
    return text_table(headers, rows)
