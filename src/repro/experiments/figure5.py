"""Figure 5: function-invocation estimation.

* **5a** — the four simple combiners (call_site, direct, all_rec,
  all_rec2) and profiling at the 25% cutoff.
* **5b / 5c** — direct vs. the call-graph Markov model vs. profiling at
  the 10% and 25% cutoffs.

All estimates are built on the *smart* intra-procedural estimator, as
in the paper.  Headline: Markov scores about 10 points above direct at
both cutoffs, ~80% on average at 25%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.session import session_for_suite
from repro.estimators.inter.simple import SIMPLE_INTER_ESTIMATORS
from repro.experiments.render import percent, series_table
from repro.metrics.protocol import (
    invocation_profiling_baseline,
    invocation_score_over_profiles,
)
from repro.suite import SUITE, collect_profiles

SIMPLE_COLUMNS = (
    "call_site",
    "direct",
    "all_rec",
    "all_rec2",
    "profiling",
)
MARKOV_COLUMNS = ("direct", "markov", "profiling")


@dataclass
class Figure5Result:
    #: program -> estimator -> score, at the 25% cutoff (Figure 5a).
    simple_scores: dict[str, dict[str, float]]
    #: program -> estimator -> score at 10% (5b) and 25% (5c).
    markov_scores_10: dict[str, dict[str, float]]
    markov_scores_25: dict[str, dict[str, float]]

    @staticmethod
    def _averages(
        scores: dict[str, dict[str, float]], columns: tuple[str, ...]
    ) -> dict[str, float]:
        return {
            column: sum(row[column] for row in scores.values())
            / len(scores)
            for column in columns
        }

    def render(self) -> str:
        parts = []
        for title, scores, columns in (
            (
                "Figure 5a: simple invocation estimators (25% cutoff)",
                self.simple_scores,
                SIMPLE_COLUMNS,
            ),
            (
                "Figure 5b: direct vs Markov (10% cutoff)",
                self.markov_scores_10,
                MARKOV_COLUMNS,
            ),
            (
                "Figure 5c: direct vs Markov (25% cutoff)",
                self.markov_scores_25,
                MARKOV_COLUMNS,
            ),
        ):
            rows = dict(scores)
            rows["AVERAGE"] = self._averages(scores, columns)
            parts.append(
                f"{title}\n\n"
                + series_table(list(rows), list(columns), rows, percent)
            )
        return "\n\n".join(parts)


def simple_scores_for_program(
    name: str, cutoff: float = 0.25
) -> dict[str, float]:
    """Figure 5a columns for one program."""
    session = session_for_suite(name)
    program = session.program
    profiles = collect_profiles(name)
    scores: dict[str, float] = {}
    for estimator_name in SIMPLE_INTER_ESTIMATORS:
        estimate = session.invocations(estimator_name, "smart")
        scores[estimator_name] = invocation_score_over_profiles(
            program, estimate, profiles, cutoff
        )
    scores["profiling"] = invocation_profiling_baseline(
        program, profiles, cutoff
    )
    return scores


def markov_scores_for_program(
    name: str, cutoff: float
) -> dict[str, float]:
    """Figure 5b/5c columns for one program at one cutoff."""
    session = session_for_suite(name)
    program = session.program
    profiles = collect_profiles(name)
    direct = session.invocations("direct", "smart")
    markov = session.invocations("markov", "smart")
    return {
        "direct": invocation_score_over_profiles(
            program, direct, profiles, cutoff
        ),
        "markov": invocation_score_over_profiles(
            program, markov, profiles, cutoff
        ),
        "profiling": invocation_profiling_baseline(
            program, profiles, cutoff
        ),
    }


def run_figure5() -> Figure5Result:
    """Compute Figures 5a-5c for the whole suite."""
    simple = {
        entry.name: simple_scores_for_program(entry.name)
        for entry in SUITE
    }
    markov_10 = {
        entry.name: markov_scores_for_program(entry.name, 0.10)
        for entry in SUITE
    }
    markov_25 = {
        entry.name: markov_scores_for_program(entry.name, 0.25)
        for entry in SUITE
    }
    return Figure5Result(simple, markov_10, markov_25)
