"""Figure 10: selective optimization of compress.

Functions are optimized one at a time in three ranking orders — the
static call-graph Markov estimate, the first input's profile, and the
normalized-and-summed aggregate of the remaining profiles — and the
simulated speedup is measured on a held-out evaluation input none of
the rankings saw (paper §6).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.analysis.session import session_for_suite
from repro.experiments.render import text_table
from repro.interp.machine import Machine
from repro.optimize.selective import (
    SelectiveSweep,
    ranking_from_estimate,
    ranking_from_profile,
    sweep_selective_optimization,
)
from repro.profiles.aggregate import aggregate_profiles
from repro.profiles.cache import cached_profile_for_source
from repro.profiles.profile import Profile
from repro.suite import collect_profiles, load_program, program_source
from repro.suite.registry import INPUTS_DIR


@dataclass
class Figure10Result:
    sweeps: list[SelectiveSweep]

    def render(self) -> str:
        counts = self.sweeps[0].counts
        headers = ["ranking"] + [f"k={count}" for count in counts]
        rows = []
        for sweep in self.sweeps:
            rows.append(
                [sweep.ranking_name]
                + [f"{speedup:.3f}" for speedup in sweep.speedups]
            )
        table = text_table(headers, rows)
        top = "\n".join(
            f"  {sweep.ranking_name:10} top-4: "
            f"{', '.join(sweep.ordered_functions[:4])}"
            for sweep in self.sweeps
        )
        return (
            "Figure 10: selective optimization of compress "
            "(simulated speedup)\n\n"
            f"{table}\n\nRanking heads:\n{top}"
        )

    def sweep(self, name: str) -> SelectiveSweep:
        for sweep in self.sweeps:
            if sweep.ranking_name == name:
                return sweep
        raise KeyError(name)


def evaluation_profile() -> Profile:
    """Profile of compress on the held-out evaluation input."""
    path = os.path.join(INPUTS_DIR, "compress.eval.txt")
    with open(path, encoding="utf-8") as handle:
        stdin = handle.read()

    def interpret() -> Profile:
        program = load_program("compress")
        fresh = Profile("compress", "eval")
        result = Machine(program, stdin=stdin, profile=fresh).run()
        if result.status != 0:
            raise RuntimeError("compress failed on the evaluation input")
        return fresh

    return cached_profile_for_source(
        program_source("compress"), stdin, interpret
    )


def run_figure10() -> Figure10Result:
    """Run the Figure 10 sweeps for all three rankings."""
    session = session_for_suite("compress")
    program = session.program
    profiles = collect_profiles("compress")
    held_out = evaluation_profile()
    rankings = [
        (
            "estimate",
            ranking_from_estimate(session.invocations("markov", "smart")),
        ),
        ("profile", ranking_from_profile(program, profiles[0])),
        (
            "aggregate",
            ranking_from_profile(
                program, aggregate_profiles(profiles[1:])
            ),
        ),
    ]
    sweeps = [
        sweep_selective_optimization(program, held_out, ranking, name)
        for name, ranking in rankings
    ]
    return Figure10Result(sweeps)
