"""Experiment harnesses: one module per table/figure in the paper."""

from repro.experiments.runner import (
    EXPERIMENTS,
    RunAllTimings,
    run_all,
    run_experiment,
    run_one,
)

__all__ = [
    "EXPERIMENTS",
    "RunAllTimings",
    "run_all",
    "run_experiment",
    "run_one",
]
