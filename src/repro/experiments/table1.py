"""Table 1: the benchmark suite roster.

The paper's Table 1 lists each program with its source line count and a
one-line description; ours adds the paper program it stands in for and
the control-flow category that drives the analysis (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import text_table
from repro.suite import SUITE, source_line_count


@dataclass
class Table1Row:
    name: str
    lines: int
    paper_analogue: str
    category: str
    description: str


@dataclass
class Table1Result:
    rows: list[Table1Row]

    def render(self) -> str:
        return text_table(
            ["Program", "Lines", "Stands for", "Category", "Description"],
            [
                (
                    row.name,
                    row.lines,
                    row.paper_analogue,
                    row.category,
                    row.description,
                )
                for row in self.rows
            ],
            title="Table 1: programs used in this study",
        )

    def total_lines(self) -> int:
        return sum(row.lines for row in self.rows)


def run_table1() -> Table1Result:
    """Build Table 1 from the suite registry."""
    rows = [
        Table1Row(
            name=entry.name,
            lines=source_line_count(entry.name),
            paper_analogue=entry.paper_analogue,
            category=entry.category,
            description=entry.description,
        )
        for entry in SUITE
    ]
    return Table1Result(rows)
