"""Figure 9: global call-site frequency estimation.

Call sites across the whole program are ranked by estimated frequency
(local block frequency × caller invocation estimate), with pointer
calls omitted, and scored by weight matching at the 25% cutoff.
Columns: *direct* and *Markov* invocation backends (both on the smart
intra estimator) and the leave-one-out profiling baseline.  The paper's
headline: the Markov combination identifies the busiest quarter of the
call sites with ~76% accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.session import session_for_suite
from repro.experiments.render import percent, series_table
from repro.metrics.protocol import (
    CALL_SITE_CUTOFF,
    call_site_profiling_baseline,
    call_site_score_over_profiles,
)
from repro.suite import SUITE, collect_profiles

COLUMNS = ("direct", "markov", "profiling")


@dataclass
class Figure9Result:
    cutoff: float
    scores: dict[str, dict[str, float]]

    def averages(self) -> dict[str, float]:
        return {
            column: sum(row[column] for row in self.scores.values())
            / len(self.scores)
            for column in COLUMNS
        }

    def render(self) -> str:
        rows = dict(self.scores)
        rows["AVERAGE"] = self.averages()
        table = series_table(list(rows), list(COLUMNS), rows, percent)
        return (
            f"Figure 9: call-site weight matching "
            f"({self.cutoff:.0%} cutoff)\n\n{table}"
        )


def scores_for_program(
    name: str, cutoff: float = CALL_SITE_CUTOFF
) -> dict[str, float]:
    """The three Figure 9 columns for one program."""
    session = session_for_suite(name)
    program = session.program
    profiles = collect_profiles(name)
    return {
        "direct": call_site_score_over_profiles(
            program,
            session.call_site_frequencies("direct"),
            profiles,
            cutoff,
        ),
        "markov": call_site_score_over_profiles(
            program,
            session.call_site_frequencies("markov"),
            profiles,
            cutoff,
        ),
        "profiling": call_site_profiling_baseline(
            program, profiles, cutoff
        ),
    }


def run_figure9(cutoff: float = CALL_SITE_CUTOFF) -> Figure9Result:
    """Compute Figure 9 for the whole suite."""
    return Figure9Result(
        cutoff,
        {
            entry.name: scores_for_program(entry.name, cutoff)
            for entry in SUITE
        },
    )
