"""The paper's running examples: strchr (Figures 1, 3, 6, 7; Table 2)
and count_nodes (Figure 8).

These are exact, checkable reproductions: the Markov solution of the
strchr CFG must come out to the paper's numbers (test count 2.78, the
early return draining flow), and count_nodes must exhibit the impossible
self-arc weight 1.6 that motivates the recursion repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.session import AnalysisSession, session_for_source
from repro.cfg.block import CondBranch, Jump, ReturnTerm
from repro.estimators.intra.astwalk import AstFrequencyWalker
from repro.estimators.inter.markov import build_call_graph_system
from repro.frontend import ast_nodes as ast
from repro.prediction.error_functions import settings_for_program
from repro.program import Program

#: Figure 1: the paper's simple implementation of strchr.
STRCHR_SOURCE = """\
/* Find first occurrence of a character in a string. */
char *my_strchr(char *str, int c)
{
    while (*str) {
        if (*str == c)
            return str;
        str++;
    }
    return 0;
}
"""

#: Harness reproducing the paper's profiling: called once with
#: ("abc", 'a') and once with ("abc", 'b').
STRCHR_HARNESS = """\
int main(void)
{
    char buf[4];
    buf[0] = 'a';
    buf[1] = 'b';
    buf[2] = 'c';
    buf[3] = 0;
    my_strchr(buf, 'a');
    my_strchr(buf, 'b');
    return 0;
}
"""

#: Figure 8: incorrect branch prediction can make recursion estimates
#: numerically impossible.
COUNT_NODES_SOURCE = """\
/* Count the number of nodes in a binary tree */
struct tree_node { struct tree_node *left, *right; };

int count_nodes(struct tree_node *node)
{
    if (node == 0)
        return 0;
    else
        return count_nodes(node->left) +
               count_nodes(node->right) + 1;
}

int main(void)
{
    return count_nodes(0);
}
"""


def strchr_session() -> AnalysisSession:
    """The shared analysis session of the strchr example.

    Figure 3, Figures 6/7, and Table 2 all consume this one session, so
    the example source is parsed once per process no matter how many of
    them run.
    """
    return session_for_source(
        STRCHR_SOURCE + "\n" + STRCHR_HARNESS, "strchr-example"
    )


def strchr_program() -> Program:
    """The strchr example plus its two-call harness."""
    return strchr_session().program


def count_nodes_session() -> AnalysisSession:
    """The shared analysis session of the Figure 8 example."""
    return session_for_source(COUNT_NODES_SOURCE, "count-nodes-example")


def count_nodes_program() -> Program:
    """The Figure 8 example compiled into a Program."""
    return count_nodes_session().program


#: Display names matching the paper's Figure 6 labels, keyed by our CFG
#: block labels.
PAPER_BLOCK_NAMES = {
    "entry": "entry",
    "while": "while",
    "while.body": "if",
    "if.join": "incr",
}


def paper_block_names(program: Program) -> dict[int, str]:
    """Map strchr CFG block ids to the paper's names (return blocks are
    numbered so the in-loop return is return1, as in the paper)."""
    cfg = program.cfg("my_strchr")
    names: dict[int, str] = {}
    return_blocks: list[int] = []
    for block in sorted(cfg, key=lambda b: b.block_id):
        if isinstance(block.terminator, ReturnTerm):
            return_blocks.append(block.block_id)
        else:
            names[block.block_id] = PAPER_BLOCK_NAMES.get(
                block.label, block.label
            )
    # The paper's return1 is `return str` (inside the loop) — the block
    # whose return value is non-NULL; return2 is `return NULL`.
    def is_return_str(block_id: int) -> bool:
        terminator = cfg.block(block_id).terminator
        assert isinstance(terminator, ReturnTerm)
        return isinstance(terminator.value, ast.Identifier)

    ordered = sorted(return_blocks, key=lambda b: not is_return_str(b))
    for index, block_id in enumerate(ordered, start=1):
        names[block_id] = f"return{index}"
    return names


# ----------------------------------------------------------------------
# Figure 3: annotated AST.


@dataclass
class Figure3Result:
    lines: list[str]

    def render(self) -> str:
        return "\n".join(
            ["Figure 3: AST of strchr with estimated frequencies", ""]
            + self.lines
        )


def run_figure3() -> Figure3Result:
    """Figure 3: the strchr AST annotated with smart-walk frequencies."""
    program = strchr_program()
    function = program.function("my_strchr")
    walker = AstFrequencyWalker(
        use_branch_heuristics=True,
        settings=settings_for_program(program),
    )
    walker.walk_function(function)
    lines: list[str] = [f"function my_strchr  [entry = 1]"]
    _render_ast(function.body, walker, 1, lines)
    return Figure3Result(lines)


def _render_ast(
    node: ast.Statement,
    walker: AstFrequencyWalker,
    depth: int,
    lines: list[str],
) -> None:
    indent = "  " * depth
    frequency = walker.statement_frequency.get(node.node_id)
    tag = type(node).__name__
    note = "" if frequency is None else f"  [{frequency:g}]"
    if isinstance(node, ast.Compound):
        for item in node.items:
            _render_ast(item, walker, depth, lines)
        return
    test = walker.test_frequency.get(node.node_id)
    test_note = "" if test is None else f"  [test = {test:g}]"
    lines.append(f"{indent}{tag}{note}{test_note}")
    for child in node.children():
        if isinstance(child, ast.Statement):
            _render_ast(child, walker, depth + 1, lines)


# ----------------------------------------------------------------------
# Figures 6 and 7: the CFG, its linear system, and the solution.


@dataclass
class MarkovExampleResult:
    block_names: dict[int, str]
    probabilities: dict[tuple[int, int], float]
    solution: dict[int, float]
    equations: list[str]

    def render(self) -> str:
        lines = [
            "Figure 6: strchr CFG annotated with branch probabilities",
            "",
        ]
        for (source, target), probability in sorted(
            self.probabilities.items()
        ):
            lines.append(
                f"  {self.block_names[source]:8} -> "
                f"{self.block_names[target]:8}  p = {probability:.2f}"
            )
        lines.append("")
        lines.append("Figure 7a: linear equations")
        lines.extend(f"  {equation}" for equation in self.equations)
        lines.append("")
        lines.append("Figure 7b: solution (relative execution frequencies)")
        for block_id, name in sorted(
            self.block_names.items(), key=lambda item: item[0]
        ):
            lines.append(f"  {name:8} = {self.solution[block_id]:.2f}")
        return "\n".join(lines)

    def frequency(self, paper_name: str) -> float:
        for block_id, name in self.block_names.items():
            if name == paper_name:
                return self.solution[block_id]
        raise KeyError(paper_name)


def run_markov_example() -> MarkovExampleResult:
    """Figures 6/7: the strchr CFG system and its exact solution."""
    session = strchr_session()
    program = session.program
    cfg = program.cfg("my_strchr")
    names = paper_block_names(program)
    transitions = session.transitions("my_strchr")
    probabilities = {
        (source, target): probability
        for source, row in transitions.items()
        for target, probability in row.items()
    }
    solution = session.intra_estimates("markov")["my_strchr"]
    predecessors = cfg.predecessor_map()
    equations = []
    for block_id in sorted(cfg.blocks):
        terms = []
        if block_id == cfg.entry_id:
            terms.append("1")
        for pred in sorted(set(predecessors[block_id])):
            probability = transitions[pred].get(block_id, 0.0)
            if probability == 1.0:
                terms.append(names[pred])
            else:
                terms.append(f"{probability:.1f} {names[pred]}")
        equations.append(f"{names[block_id]} = " + " + ".join(terms))
    return MarkovExampleResult(names, probabilities, solution, equations)


# ----------------------------------------------------------------------
# Figure 8: the recursion pathology and its repair.


@dataclass
class Figure8Result:
    raw_self_arc_weight: float
    unrepaired_solution: dict[str, float] | None
    repaired_invocations: dict[str, float]

    def render(self) -> str:
        lines = [
            "Figure 8: count_nodes recursion pathology",
            "",
            "The pointer heuristic predicts `node == NULL` false, so the",
            "recursive arm (two self-calls at probability 0.8) gets the",
            "impossible self-arc weight:",
            f"  count_nodes -> count_nodes = "
            f"{self.raw_self_arc_weight:.2f}  (> 1: 'never returns')",
            "",
        ]
        if self.unrepaired_solution is not None:
            value = self.unrepaired_solution.get("count_nodes", 0.0)
            lines.append(
                f"Solving without repair yields a negative frequency: "
                f"count_nodes = {value:.2f}"
            )
        else:
            lines.append(
                "Solving without repair fails (singular system)."
            )
        lines.append(
            "After clamping the self-arc to 0.8 (paper §5.2.2): "
            f"count_nodes = "
            f"{self.repaired_invocations['count_nodes']:.2f}"
        )
        return "\n".join(lines)


def run_figure8() -> Figure8Result:
    """Figure 8: the count_nodes self-arc pathology and its repair."""
    session = count_nodes_session()
    program = session.program
    estimates = session.intra_estimates("smart")
    system = build_call_graph_system(program, estimates)
    raw_weight = system.weights.get(("count_nodes", "count_nodes"), 0.0)
    unrepaired: dict[str, float] | None
    try:
        unrepaired = system.solve()
    except Exception:
        unrepaired = None
    repaired = session.invocations("markov", "smart")
    return Figure8Result(raw_weight, unrepaired, repaired)
