"""Figure 4: intra-procedural basic-block frequency estimation.

Weight-matching scores at the paper's 5% cutoff for the *loop*,
*smart*, and *markov* estimators and the leave-one-out *profiling*
baseline, per program plus the all-program average.  The paper's
finding: essentially all the benefit comes from the loop model; smart
and Markov add little; static estimation is close to profiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.session import session_for_suite
from repro.experiments.render import percent, series_table
from repro.metrics.protocol import (
    INTRA_CUTOFF,
    intra_profiling_baseline,
    intra_score_over_profiles,
)
from repro.suite import SUITE, collect_profiles

COLUMNS = ("loop", "smart", "markov", "profiling")


@dataclass
class Figure4Result:
    cutoff: float
    #: program -> column -> score (0..1).
    scores: dict[str, dict[str, float]]

    def averages(self) -> dict[str, float]:
        programs = list(self.scores)
        return {
            column: sum(self.scores[name][column] for name in programs)
            / len(programs)
            for column in COLUMNS
        }

    def render(self) -> str:
        rows = dict(self.scores)
        rows["AVERAGE"] = self.averages()
        table = series_table(list(rows), list(COLUMNS), rows, percent)
        return (
            f"Figure 4: intra-procedural weight matching "
            f"({self.cutoff:.0%} cutoff)\n\n{table}"
        )


def scores_for_program(
    name: str, cutoff: float = INTRA_CUTOFF
) -> dict[str, float]:
    """The four Figure 4 columns for one suite program."""
    session = session_for_suite(name)
    program = session.program
    profiles = collect_profiles(name)
    scores: dict[str, float] = {}
    for estimator in ("loop", "smart", "markov"):
        estimates = session.intra_estimates(estimator)
        scores[estimator] = intra_score_over_profiles(
            program, estimates, profiles, cutoff
        )
    scores["profiling"] = intra_profiling_baseline(
        program, profiles, cutoff
    )
    return scores


def run_figure4(cutoff: float = INTRA_CUTOFF) -> Figure4Result:
    """Compute Figure 4 for the whole suite."""
    return Figure4Result(
        cutoff,
        {
            entry.name: scores_for_program(entry.name, cutoff)
            for entry in SUITE
        },
    )
