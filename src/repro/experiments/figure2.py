"""Figure 2: branch-prediction miss rates.

For every suite program: the dynamic miss rate of

* the paper's *smart* heuristic predictor,
* *profiling* — for each input, predicting with the aggregate of the
  other inputs' profiles (leave-one-out), and
* the *perfect static predictor* (PSP) — each profile predicting its
  own majority directions, the floor for any static per-branch scheme.

Constant-condition branches and all switches are excluded (paper §2,
§4.1).  The paper's headline: the heuristic's miss rate is about twice
profiling's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.session import session_for_suite
from repro.experiments.render import percent, series_table
from repro.prediction.missrate import (
    measure_miss_rate,
    measure_psp_miss_rate,
)
from repro.prediction.predictor import ProfilePredictor
from repro.profiles.aggregate import leave_one_out_aggregates
from repro.suite import SUITE, collect_profiles

COLUMNS = ("predictor", "profiling", "PSP")


@dataclass
class Figure2Result:
    #: program -> column -> miss rate (0..1).
    miss_rates: dict[str, dict[str, float]]
    #: Average fraction of dynamic branches that are switches (the
    #: paper excludes them, noting they are "less than 3% ... on
    #: average").
    switch_fraction: float = 0.0

    def averages(self) -> dict[str, float]:
        programs = list(self.miss_rates)
        return {
            column: sum(
                self.miss_rates[name][column] for name in programs
            )
            / len(programs)
            for column in COLUMNS
        }

    def render(self) -> str:
        rows = dict(self.miss_rates)
        rows["AVERAGE"] = self.averages()
        table = series_table(
            list(rows),
            list(COLUMNS),
            rows,
            formatter=percent,
        )
        return (
            f"{table}\n\n"
            f"(constant branches and switches excluded; switches are "
            f"{percent(self.switch_fraction)} of dynamic branches on "
            f"average)"
        )


def miss_rates_for_program(name: str) -> dict[str, float]:
    """The three Figure 2 miss rates for one suite program."""
    session = session_for_suite(name)
    program = session.program
    profiles = collect_profiles(name)
    # The session's predictor memoizes per-branch predictions, so the
    # heuristic AST matching runs once per branch, not once per profile.
    heuristic = session.predictor()

    heuristic_rates = [
        measure_miss_rate(program, heuristic, profile).miss_rate
        for profile in profiles
    ]
    profiling_rates = [
        measure_miss_rate(
            program, ProfilePredictor(aggregate), held_out
        ).miss_rate
        for held_out, aggregate in leave_one_out_aggregates(profiles)
    ]
    psp_rates = [
        measure_psp_miss_rate(program, profile).miss_rate
        for profile in profiles
    ]

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return {
        "predictor": mean(heuristic_rates),
        "profiling": mean(profiling_rates),
        "PSP": mean(psp_rates),
    }


def average_switch_fraction() -> float:
    """Suite-average fraction of dynamic branches that are switches."""
    from repro.prediction.missrate import switch_branch_fraction

    fractions = []
    for entry in SUITE:
        program = session_for_suite(entry.name).program
        profiles = collect_profiles(entry.name)
        fractions.append(
            sum(
                switch_branch_fraction(program, profile)
                for profile in profiles
            )
            / len(profiles)
        )
    return sum(fractions) / len(fractions)


def run_figure2() -> Figure2Result:
    """Compute Figure 2 miss rates for every suite program."""
    return Figure2Result(
        {
            entry.name: miss_rates_for_program(entry.name)
            for entry in SUITE
        },
        switch_fraction=average_switch_fraction(),
    )
