"""Registry mapping experiment names to runnable entry points.

Every table and figure in the paper's evaluation has an entry here;
the CLI and the benchmark harness both dispatch through this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.examples import (
    run_figure3,
    run_figure8,
    run_markov_example,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


@dataclass(frozen=True)
class Experiment:
    """One reproducible table or figure."""

    name: str
    description: str
    run: Callable[[], object]  # Result object with a .render() method.


EXPERIMENTS: dict[str, Experiment] = {
    experiment.name: experiment
    for experiment in (
        Experiment(
            "table1",
            "The benchmark suite roster with line counts",
            run_table1,
        ),
        Experiment(
            "table2",
            "Weight matching on the strchr example (20%/60% cutoffs)",
            run_table2,
        ),
        Experiment(
            "figure2",
            "Branch-prediction miss rates: heuristic vs profiling vs PSP",
            run_figure2,
        ),
        Experiment(
            "figure3",
            "strchr AST annotated with smart-heuristic frequencies",
            run_figure3,
        ),
        Experiment(
            "figure4",
            "Intra-procedural weight matching at the 5% cutoff",
            run_figure4,
        ),
        Experiment(
            "figure5",
            "Function-invocation estimators at 10%/25% cutoffs",
            run_figure5,
        ),
        Experiment(
            "figure6_7",
            "strchr CFG probabilities, linear system, and solution",
            run_markov_example,
        ),
        Experiment(
            "figure8",
            "count_nodes recursion pathology and its repair",
            run_figure8,
        ),
        Experiment(
            "figure9",
            "Call-site weight matching at the 25% cutoff",
            run_figure9,
        ),
        Experiment(
            "figure10",
            "Selective optimization of compress",
            run_figure10,
        ),
    )
}


def run_experiment(name: str) -> str:
    """Run one experiment by name and return its rendered text."""
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choices: {sorted(EXPERIMENTS)}"
        ) from None
    result = experiment.run()
    return result.render()  # type: ignore[attr-defined]


def prefetch_profiles(jobs: int | None = None) -> None:
    """Warm every suite profile through the parallel cached pipeline.

    All experiments share the same profiles; collecting them up front
    (fanned out over ``jobs`` workers, served from the persistent cache
    when warm) means the per-experiment code never pays for profiling.
    """
    from repro.suite import collect_suite_profiles

    collect_suite_profiles(jobs=jobs)


def run_all(jobs: int | None = None) -> str:
    """Run every experiment, concatenating the rendered sections."""
    prefetch_profiles(jobs=jobs)
    sections = []
    for name in EXPERIMENTS:
        sections.append(f"=== {name} ===\n\n{run_experiment(name)}")
    return "\n\n\n".join(sections)
