"""Registry mapping experiment names to runnable entry points.

Every table and figure in the paper's evaluation has an entry here;
the CLI and the benchmark harness both dispatch through this table.

``run_all`` first warms every suite profile through the parallel cached
pipeline, then runs the experiments themselves — serially with
``jobs=1``, or fanned out over a ``ProcessPoolExecutor`` otherwise.
Workers inherit the warm profile memo (and fall back to the persistent
caches), return their rendered sections plus an observability snapshot
(spans and metric deltas), and the parent merges the sections in
registry order, so parallel output is byte-for-byte identical to serial
output.

Each experiment runs inside an ``experiment:<name>`` span under one
``run_all`` root; worker spans are re-parented under the same root in
registry order, so serial and parallel runs produce the same span-name
set.  The ``--timings`` report (:class:`RunAllTimings`) is a view over
that span tree plus the merged ``analysis.stage.*`` metrics.

With ``record=True`` (the CLI default), a finished run is appended to
the persistent run ledger (:mod:`repro.obs.ledger`): every experiment's
flattened accuracy numbers become score rows, the span-derived stage
times become stage rows, and the run's metric deltas (cache traffic,
solver dispatches, interpreter totals) become counter rows — whatever
the worker count, since workers ship their metrics home through the
same :class:`~repro.obs.aggregate.WorkerCapture` path that keeps the
trace coherent.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.obs import (
    WorkerCapture,
    absorb,
    forced_tracing,
    span,
    tracing_enabled,
)
from repro.suite.pipeline import SuiteTimings, resolve_jobs

from repro.experiments.examples import (
    run_figure3,
    run_figure8,
    run_markov_example,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


@dataclass(frozen=True)
class Experiment:
    """One reproducible table or figure."""

    name: str
    description: str
    run: Callable[[], object]  # Result object with a .render() method.


EXPERIMENTS: dict[str, Experiment] = {
    experiment.name: experiment
    for experiment in (
        Experiment(
            "table1",
            "The benchmark suite roster with line counts",
            run_table1,
        ),
        Experiment(
            "table2",
            "Weight matching on the strchr example (20%/60% cutoffs)",
            run_table2,
        ),
        Experiment(
            "figure2",
            "Branch-prediction miss rates: heuristic vs profiling vs PSP",
            run_figure2,
        ),
        Experiment(
            "figure3",
            "strchr AST annotated with smart-heuristic frequencies",
            run_figure3,
        ),
        Experiment(
            "figure4",
            "Intra-procedural weight matching at the 5% cutoff",
            run_figure4,
        ),
        Experiment(
            "figure5",
            "Function-invocation estimators at 10%/25% cutoffs",
            run_figure5,
        ),
        Experiment(
            "figure6_7",
            "strchr CFG probabilities, linear system, and solution",
            run_markov_example,
        ),
        Experiment(
            "figure8",
            "count_nodes recursion pathology and its repair",
            run_figure8,
        ),
        Experiment(
            "figure9",
            "Call-site weight matching at the 25% cutoff",
            run_figure9,
        ),
        Experiment(
            "figure10",
            "Selective optimization of compress",
            run_figure10,
        ),
    )
}


def _run_scored(name: str) -> tuple[str, dict[str, float]]:
    """Run one experiment; return its rendered text and its flattened
    numeric results (the ledger's score rows for this experiment)."""
    from repro.obs.ledger import flatten_scalars

    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choices: {sorted(EXPERIMENTS)}"
        ) from None
    with span(f"experiment:{name}"):
        result = experiment.run()
    rendered = result.render()  # type: ignore[attr-defined]
    scores = flatten_scalars(result)
    if not scores:
        # Text-only results (e.g. an annotated AST) carry no scalar
        # fields; a digest of the rendered output still lets the
        # ledger flag any change in what the experiment produced.
        scores = {
            "render/chars": float(len(rendered)),
            "render/crc32": float(zlib.crc32(rendered.encode("utf-8"))),
        }
    return rendered, scores


def run_experiment(name: str) -> str:
    """Run one experiment by name and return its rendered text.

    The run happens inside an ``experiment:<name>`` span, so every
    experiment is visible in a trace whether it ran standalone, under
    ``run all``, or in a worker process.
    """
    return _run_scored(name)[0]


def run_one(
    name: str,
    record: bool = False,
    started_at: Optional[str] = None,
) -> str:
    """Run one experiment, optionally appending it to the run ledger.

    The ledger row carries the experiment's accuracy numbers, its wall
    time as an ``experiment:<name>`` stage, and the metric deltas the
    run produced.
    """
    from repro.obs import ledger
    from repro.obs.metrics import metrics_delta, metrics_snapshot

    if not (record and ledger.ledger_enabled()):
        return run_experiment(name)
    metrics_before = metrics_snapshot()
    clock = time.perf_counter()
    rendered, metrics = _run_scored(name)
    seconds = time.perf_counter() - clock
    ledger.record_run(
        "run",
        label=name,
        started_at=started_at,
        jobs=1,
        scores={name: metrics},
        stages={f"experiment:{name}": seconds},
        counters=ledger.counter_values(metrics_delta(metrics_before)),
    )
    return rendered


def prefetch_profiles(
    jobs: int | None = None, timings: Optional[SuiteTimings] = None
) -> None:
    """Warm every suite profile through the parallel cached pipeline.

    All experiments share the same profiles; collecting them up front
    (fanned out over ``jobs`` workers, served from the persistent cache
    when warm) means the per-experiment code never pays for profiling.
    """
    from repro.suite import collect_suite_profiles

    collect_suite_profiles(jobs=jobs, timings=timings)


@dataclass
class RunAllTimings:
    """Instrumentation for one ``run_all`` (``repro run all --timings``).

    A view over the run's trace: the profiling pipeline report comes
    from the ``suite.collect`` span tree, per-experiment wall times from
    the ``experiment:<name>`` spans (measured in whichever process ran
    them), and the analysis stage totals from the ``analysis.stage.*``
    metrics merged across every worker.
    """

    jobs: int = 1
    total_seconds: float = 0.0
    profiling: SuiteTimings = field(default_factory=SuiteTimings)
    #: experiment name -> wall seconds, in registry order.
    experiment_seconds: dict[str, float] = field(default_factory=dict)
    #: analysis stage -> seconds, summed over all workers.
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def populate_from_span(
        self,
        root,
        profiling: SuiteTimings,
        names: Sequence[str],
        jobs: int,
        stage_seconds: dict[str, float],
    ) -> None:
        """Fill the report from a finished ``run_all`` span."""
        by_name: dict[str, float] = {}
        for child in root.children:
            if child.name.startswith("experiment:"):
                experiment = child.name[len("experiment:"):]
                by_name[experiment] = (
                    by_name.get(experiment, 0.0) + child.seconds
                )
        self.jobs = jobs
        self.profiling = profiling
        self.experiment_seconds = {
            name: by_name.get(name, 0.0) for name in names
        }
        self.stage_seconds = stage_seconds
        self.total_seconds = root.seconds

    def render(self) -> str:
        lines = ["profiling pipeline:"]
        lines.extend(
            "  " + line for line in self.profiling.render().splitlines()
        )
        lines.append("")
        lines.append(f"{'experiment':12} {'seconds':>8}")
        for name, seconds in self.experiment_seconds.items():
            lines.append(f"{name:12} {seconds:8.2f}")
        lines.append("")
        lines.append(f"{'analysis stage':16} {'seconds':>8}")
        for stage in sorted(self.stage_seconds):
            lines.append(
                f"{stage:16} {self.stage_seconds[stage]:8.2f}"
            )
        lines.append("")
        lines.append(
            f"TOTAL {self.total_seconds:8.2f}  (jobs={self.jobs})"
        )
        return "\n".join(lines)


def _experiment_worker(
    task: tuple[str, bool]
) -> tuple[str, str, dict, dict]:
    """Run one experiment in a worker process.

    Returns the rendered section, the experiment's flattened scores
    (for the run ledger), and the observability snapshot (the
    experiment's span tree and metric deltas — cache traffic, analysis
    stage times) for the parent to merge.
    """
    name, trace = task
    capture = WorkerCapture(trace)
    with capture:
        rendered, metrics = _run_scored(name)
    return name, rendered, metrics, capture.snapshot


def _ledger_stages(report: RunAllTimings) -> dict[str, float]:
    """Flatten a :class:`RunAllTimings` into the ledger's stage rows."""
    stages = {
        "total": report.total_seconds,
        "profiling": report.profiling.total_seconds,
    }
    for name, seconds in report.experiment_seconds.items():
        stages[f"experiment:{name}"] = seconds
    for stage, seconds in report.stage_seconds.items():
        stages[f"analysis:{stage}"] = seconds
    return stages


def run_all(
    jobs: int | None = None,
    timings: Optional[RunAllTimings] = None,
    record: bool = False,
    started_at: Optional[str] = None,
) -> str:
    """Run every experiment, concatenating the rendered sections.

    With ``jobs > 1`` the experiments fan out over worker processes;
    the merged output is byte-identical to a serial run, and the merged
    trace has the same shape (worker spans are adopted by the parent's
    ``run_all`` span in registry order).

    With ``record=True`` (and the ledger enabled), the run is appended
    to the persistent ledger: per-experiment accuracy numbers, stage
    wall-times derived from the span tree, and the run's metric deltas.
    Workers return their flattened scores with their rendered sections,
    so jobs=1 and jobs=N produce the same score rows.
    """
    from repro.analysis.session import stage_snapshot, stage_totals_since
    from repro.obs import ledger
    from repro.obs.metrics import metrics_delta, metrics_snapshot

    jobs = resolve_jobs(jobs)
    names = list(EXPERIMENTS)
    rendered: dict[str, str] = {}
    scores: dict[str, dict[str, float]] = {}
    recording = record and ledger.ledger_enabled()
    # Stage times are a view over the span tree, so recording (like
    # --timings) forces tracing on for the duration of the run.
    report = timings
    if report is None and recording:
        report = RunAllTimings()
    metrics_before = metrics_snapshot() if recording else {}

    with forced_tracing(report is not None):
        stages_before = stage_snapshot()
        with span("run_all", jobs=jobs) as root:
            profiling = SuiteTimings()
            prefetch_profiles(
                jobs=jobs,
                timings=profiling if report is not None else None,
            )
            if jobs > 1:
                tasks = [(name, tracing_enabled()) for name in names]
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    for name, text, metrics, snapshot in pool.map(
                        _experiment_worker, tasks
                    ):
                        rendered[name] = text
                        scores[name] = metrics
                        absorb(snapshot)
            else:
                for name in names:
                    rendered[name], scores[name] = _run_scored(name)
        if report is not None:
            report.populate_from_span(
                root,
                profiling,
                names,
                jobs,
                stage_totals_since(stages_before),
            )
    if recording:
        ledger.record_run(
            "run-all",
            started_at=started_at,
            jobs=jobs,
            scores=scores,
            stages=_ledger_stages(report),
            counters=ledger.counter_values(
                metrics_delta(metrics_before)
            ),
        )
    return "\n\n\n".join(
        f"=== {name} ===\n\n{rendered[name]}" for name in names
    )
