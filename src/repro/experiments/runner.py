"""Registry mapping experiment names to runnable entry points.

Every table and figure in the paper's evaluation has an entry here;
the CLI and the benchmark harness both dispatch through this table.

``run_all`` first warms every suite profile through the parallel cached
pipeline, then runs the experiments themselves — serially with
``jobs=1``, or fanned out over a ``ProcessPoolExecutor`` otherwise.
Workers inherit the warm profile memo (and fall back to the persistent
caches), return their rendered sections plus per-stage analysis
timings, and the parent merges the sections in registry order, so
parallel output is byte-for-byte identical to serial output.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.suite.pipeline import SuiteTimings, resolve_jobs

from repro.experiments.examples import (
    run_figure3,
    run_figure8,
    run_markov_example,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


@dataclass(frozen=True)
class Experiment:
    """One reproducible table or figure."""

    name: str
    description: str
    run: Callable[[], object]  # Result object with a .render() method.


EXPERIMENTS: dict[str, Experiment] = {
    experiment.name: experiment
    for experiment in (
        Experiment(
            "table1",
            "The benchmark suite roster with line counts",
            run_table1,
        ),
        Experiment(
            "table2",
            "Weight matching on the strchr example (20%/60% cutoffs)",
            run_table2,
        ),
        Experiment(
            "figure2",
            "Branch-prediction miss rates: heuristic vs profiling vs PSP",
            run_figure2,
        ),
        Experiment(
            "figure3",
            "strchr AST annotated with smart-heuristic frequencies",
            run_figure3,
        ),
        Experiment(
            "figure4",
            "Intra-procedural weight matching at the 5% cutoff",
            run_figure4,
        ),
        Experiment(
            "figure5",
            "Function-invocation estimators at 10%/25% cutoffs",
            run_figure5,
        ),
        Experiment(
            "figure6_7",
            "strchr CFG probabilities, linear system, and solution",
            run_markov_example,
        ),
        Experiment(
            "figure8",
            "count_nodes recursion pathology and its repair",
            run_figure8,
        ),
        Experiment(
            "figure9",
            "Call-site weight matching at the 25% cutoff",
            run_figure9,
        ),
        Experiment(
            "figure10",
            "Selective optimization of compress",
            run_figure10,
        ),
    )
}


def run_experiment(name: str) -> str:
    """Run one experiment by name and return its rendered text."""
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choices: {sorted(EXPERIMENTS)}"
        ) from None
    result = experiment.run()
    return result.render()  # type: ignore[attr-defined]


def prefetch_profiles(
    jobs: int | None = None, timings: Optional[SuiteTimings] = None
) -> None:
    """Warm every suite profile through the parallel cached pipeline.

    All experiments share the same profiles; collecting them up front
    (fanned out over ``jobs`` workers, served from the persistent cache
    when warm) means the per-experiment code never pays for profiling.
    """
    from repro.suite import collect_suite_profiles

    collect_suite_profiles(jobs=jobs, timings=timings)


@dataclass
class RunAllTimings:
    """Instrumentation for one ``run_all`` (``repro run all --timings``).

    Covers all three layers: the profiling pipeline, wall time per
    experiment, and the analysis-session stage totals (parse, transition
    probabilities, intra/inter estimation, call sites) merged across
    every worker.
    """

    jobs: int = 1
    total_seconds: float = 0.0
    profiling: SuiteTimings = field(default_factory=SuiteTimings)
    #: experiment name -> wall seconds, in registry order.
    experiment_seconds: dict[str, float] = field(default_factory=dict)
    #: analysis stage -> seconds, summed over all workers.
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["profiling pipeline:"]
        lines.extend(
            "  " + line for line in self.profiling.render().splitlines()
        )
        lines.append("")
        lines.append(f"{'experiment':12} {'seconds':>8}")
        for name, seconds in self.experiment_seconds.items():
            lines.append(f"{name:12} {seconds:8.2f}")
        lines.append("")
        lines.append(f"{'analysis stage':16} {'seconds':>8}")
        for stage in sorted(self.stage_seconds):
            lines.append(
                f"{stage:16} {self.stage_seconds[stage]:8.2f}"
            )
        lines.append("")
        lines.append(
            f"TOTAL {self.total_seconds:8.2f}  (jobs={self.jobs})"
        )
        return "\n".join(lines)


def _experiment_worker(name: str) -> tuple[str, str, dict[str, float], float]:
    """Run one experiment in a worker process.

    Returns the rendered section plus the analysis stage seconds it
    accumulated, so the parent can merge timing reports across workers.
    """
    from repro.analysis.session import stage_snapshot, stage_totals_since

    before = stage_snapshot()
    clock = time.perf_counter()
    rendered = run_experiment(name)
    seconds = time.perf_counter() - clock
    return name, rendered, stage_totals_since(before), seconds


def run_all(
    jobs: int | None = None, timings: Optional[RunAllTimings] = None
) -> str:
    """Run every experiment, concatenating the rendered sections.

    With ``jobs > 1`` the experiments fan out over worker processes;
    the merged output is byte-identical to a serial run.
    """
    start = time.perf_counter()
    jobs = resolve_jobs(jobs)
    profiling = SuiteTimings()
    prefetch_profiles(jobs=jobs, timings=profiling)

    names = list(EXPERIMENTS)
    rendered: dict[str, str] = {}
    experiment_seconds: dict[str, float] = {}
    stage_seconds: dict[str, float] = {}

    def merge_stages(delta: dict[str, float]) -> None:
        for stage, seconds in delta.items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds

    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for name, text, stages, seconds in pool.map(
                _experiment_worker, names
            ):
                rendered[name] = text
                experiment_seconds[name] = seconds
                merge_stages(stages)
    else:
        for name, text, stages, seconds in map(_experiment_worker, names):
            rendered[name] = text
            experiment_seconds[name] = seconds
            merge_stages(stages)

    if timings is not None:
        timings.jobs = jobs
        timings.profiling = profiling
        timings.experiment_seconds = {
            name: experiment_seconds[name] for name in names
        }
        timings.stage_seconds = stage_seconds
        timings.total_seconds = time.perf_counter() - start
    return "\n\n\n".join(
        f"=== {name} ===\n\n{rendered[name]}" for name in names
    )
