"""Persistent on-disk cache for computed attribution payloads.

An explanation is a pure function of (program source, evaluation
profiles, estimator, attribution semantics), so it caches exactly like
the analysis artifacts: one JSON file per entry under an
``attribution/`` sibling of the profile cache, keyed by a SHA-256
content hash over

* the program's full C source text,
* a digest of every evaluation profile (serialized form — profiles are
  byte-identical across backends and worker counts, so the key is
  backend- and jobs-invariant),
* the estimator name,
* the attribution semantics version (:data:`ATTRIBUTION_VERSION`) and
  the package version.

Environment knobs, mirroring the analysis cache:

* ``REPRO_ATTRIBUTION_CACHE_DIR`` — cache directory (default:
  ``attribution/`` under the profile cache directory);
* ``REPRO_ATTRIBUTION_CACHE=0`` — disable just this layer;
  ``REPRO_CACHE=0`` disables it with everything else.

``repro cache info|clear`` covers this directory alongside the
profile/analysis/codegen caches and the fuzz corpus.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional, Sequence

import repro
from repro.obs import incr
from repro.profiles import cache as profile_cache
from repro.profiles.profile import Profile
from repro.profiles.serialize import dumps_profile

#: Bump when attribution semantics change (record fields, sensitivity
#: math, accuracy protocol) so stale entries miss.
ATTRIBUTION_VERSION = 1

_FALSEY = {"0", "no", "off", "false", ""}


def attribution_cache_enabled() -> bool:
    """Whether the attribution cache layer is on."""
    if not profile_cache.cache_enabled():
        return False
    knob = os.environ.get("REPRO_ATTRIBUTION_CACHE", "1").strip().lower()
    return knob not in _FALSEY


def attribution_cache_dir() -> str:
    """The attribution cache directory (not necessarily created yet)."""
    explicit = os.environ.get("REPRO_ATTRIBUTION_CACHE_DIR")
    if explicit:
        return explicit
    return os.path.join(profile_cache.cache_dir(), "attribution")


def attribution_cache_key(
    source: str, profiles: Sequence[Profile], estimator: str
) -> str:
    """Content hash identifying one (program, profiles, estimator)
    explanation."""
    hasher = hashlib.sha256()
    parts = [
        f"attribution={ATTRIBUTION_VERSION}",
        f"package={repro.__version__}",
        estimator,
        source,
    ]
    parts.extend(
        hashlib.sha256(dumps_profile(p).encode("utf-8")).hexdigest()
        for p in profiles
    )
    for part in parts:
        encoded = part.encode("utf-8")
        hasher.update(str(len(encoded)).encode("ascii"))
        hasher.update(b":")
        hasher.update(encoded)
    return hasher.hexdigest()


def _entry_path(key: str, directory: Optional[str] = None) -> str:
    return os.path.join(
        directory or attribution_cache_dir(), f"{key}.json"
    )


def load_cached_explanation(
    key: str, directory: Optional[str] = None
) -> Optional[dict]:
    """The cached payload for ``key``, or None on a miss."""
    try:
        with open(_entry_path(key, directory), encoding="utf-8") as handle:
            text = handle.read()
        payload = json.loads(text)
    except (OSError, ValueError):
        incr("attribution_cache.misses")
        return None
    if not isinstance(payload, dict):
        incr("attribution_cache.misses")
        return None
    incr("attribution_cache.hits")
    incr("attribution_cache.bytes_read", len(text))
    return payload


def store_explanation(
    key: str, payload: dict, directory: Optional[str] = None
) -> str:
    """Atomically write ``payload`` under ``key``; returns the path."""
    directory = directory or attribution_cache_dir()
    os.makedirs(directory, exist_ok=True)
    path = _entry_path(key, directory)
    encoded = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    incr("attribution_cache.stores")
    incr("attribution_cache.bytes_written", len(encoded))
    fd, temp_path = tempfile.mkstemp(
        prefix=f".{key[:16]}-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(encoded)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path


def attribution_cache_info(
    directory: Optional[str] = None,
) -> dict[str, object]:
    """Summary of the attribution cache: directory, entries, total
    bytes, oldest/newest entry mtimes (the ``repro cache info`` row)."""
    directory = directory or attribution_cache_dir()
    summary = profile_cache.scan_cache_entries(directory)
    summary["enabled"] = attribution_cache_enabled()
    return summary


def clear_attribution_cache(directory: Optional[str] = None) -> int:
    """Delete every attribution entry; returns how many were removed."""
    directory = directory or attribution_cache_dir()
    removed = 0
    if not os.path.isdir(directory):
        return 0
    for name in os.listdir(directory):
        if not (name.endswith(".json") or name.endswith(".tmp")):
            continue
        try:
            os.unlink(os.path.join(directory, name))
            removed += 1
        except OSError:
            pass
    return removed
