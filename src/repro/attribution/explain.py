"""The ``repro explain`` engine: collect, attribute, rank, render.

One :class:`ProgramExplanation` per program joins the attribution
pieces end to end:

1. the program's evaluation profiles are collected (persistent profile
   cache; byte-identical across backends and worker counts) and
   aggregated;
2. per-branch records are built (:mod:`repro.attribution.records`);
3. each function's branch errors are propagated through its Markov
   flow system (:mod:`repro.attribution.sensitivity`), and the
   resulting local attributions are weighted by the inter-procedural
   Markov invocation estimates so branches rank globally;
4. the result is cached (:mod:`repro.attribution.cache`), published as
   metrics (:mod:`repro.attribution.accuracy`), and rendered as text,
   JSON, JSONL features, or DOT heatmaps.

Everything on stdout is deterministic: no timings, no directories, no
job counts — ``repro explain`` output is byte-identical across
``--backend interp|compiled`` and ``--jobs 1|N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.estimators.base import (
    INTRA_ESTIMATORS,
    profile_block_estimates,
)
from repro.estimators.intra.markov import solve_flow_system
from repro.linalg.solve import SingularMatrixError
from repro.obs import incr, span
from repro.profiles.aggregate import aggregate_profiles
from repro.profiles.profile import Profile

from repro.attribution import cache as attribution_cache
from repro.attribution.accuracy import (
    accuracy_by_heuristic,
    publish_accuracy_metrics,
)
from repro.attribution.records import BranchRecord, collect_branch_records
from repro.attribution.sensitivity import attribute_function_errors

#: Default number of ranked branches shown by ``repro explain``.
DEFAULT_TOP = 10


@dataclass
class ProgramExplanation:
    """The full attribution result for one program."""

    program: str
    estimator: str
    records: list[BranchRecord] = field(default_factory=list)
    #: Signed per-block frequency error (estimate - profile), per
    #: function, normalized to one function entry.
    block_errors: dict[str, dict[int, float]] = field(
        default_factory=dict
    )
    #: Estimated invocations per function (the global ranking weight).
    invocations: dict[str, float] = field(default_factory=dict)
    #: How branches were weighted across functions: ``markov`` (the
    #: inter chain solved) or ``uniform`` (it did not).
    weighting: str = "markov"
    #: Functions whose flow system stayed singular even damped.
    singular_functions: list[str] = field(default_factory=list)

    @property
    def scored_records(self) -> list[BranchRecord]:
        return [record for record in self.records if record.scored]

    @property
    def miss_rate(self) -> float:
        scored = self.scored_records
        executions = sum(record.executions for record in scored)
        misses = sum(record.dynamic_misses for record in scored)
        return misses / executions if executions else 0.0

    def ranked_branches(self) -> list[BranchRecord]:
        """Scored branches, worst attributed error first (ties break
        by dynamic misses, then stable (function, block) order)."""
        return sorted(
            self.scored_records,
            key=lambda record: (
                -record.global_error,
                -record.dynamic_misses,
                record.function,
                record.block_id,
            ),
        )

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "estimator": self.estimator,
            "records": [record.to_dict() for record in self.records],
            "block_errors": {
                name: {str(b): e for b, e in errors.items()}
                for name, errors in self.block_errors.items()
            },
            "invocations": dict(self.invocations),
            "weighting": self.weighting,
            "singular_functions": list(self.singular_functions),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProgramExplanation":
        return cls(
            program=str(payload["program"]),
            estimator=str(payload["estimator"]),
            records=[
                BranchRecord.from_dict(entry)
                for entry in payload["records"]
            ],
            block_errors={
                name: {int(b): float(e) for b, e in errors.items()}
                for name, errors in payload["block_errors"].items()
            },
            invocations={
                name: float(value)
                for name, value in payload["invocations"].items()
            },
            weighting=str(payload["weighting"]),
            singular_functions=[
                str(name) for name in payload["singular_functions"]
            ],
        )


def _estimator_estimates(session, estimator: str):
    """Per-function block estimates for the error vector.  The Markov
    estimator is solved per function so one singular CFG skips that
    function instead of failing the program."""
    if estimator != "markov":
        return session.intra_estimates(estimator), set()
    estimates: dict[str, dict[int, float]] = {}
    singular: set[str] = set()
    program = session.program
    for name in program.function_names:
        try:
            estimates[name] = solve_flow_system(
                program.cfg(name), session.transitions(name)
            )
        except SingularMatrixError:
            singular.add(name)
            estimates[name] = {}
    return estimates, singular


def explain_program(
    name: str,
    estimator: str = "markov",
    use_cache: Optional[bool] = None,
) -> ProgramExplanation:
    """Attribute one suite program's estimation error to its branches.

    ``estimator`` picks the estimate the error vector is measured
    against (``markov``, ``smart``, or ``loop``); the sensitivity
    propagation always runs through the Markov flow system, which is
    the linear operator block frequencies actually flow through.
    """
    from repro.analysis.session import session_for_suite
    from repro.suite import collect_profiles

    if estimator not in INTRA_ESTIMATORS:
        raise KeyError(
            f"unknown intra estimator {estimator!r}; "
            f"choices: {sorted(INTRA_ESTIMATORS)}"
        )
    session = session_for_suite(name)
    program = session.program
    profiles = collect_profiles(name)
    cache_on = (
        attribution_cache.attribution_cache_enabled()
        if use_cache is None
        else use_cache
    )
    key = attribution_cache.attribution_cache_key(
        program.source or name, profiles, estimator
    )
    if cache_on:
        payload = attribution_cache.load_cached_explanation(key)
        if payload is not None:
            try:
                explanation = ProgramExplanation.from_dict(payload)
            except (KeyError, TypeError, ValueError):
                explanation = None
            if (
                explanation is not None
                and explanation.program == name
                and explanation.estimator == estimator
            ):
                publish_accuracy_metrics(name, explanation.records)
                return explanation
    with span("attribution.explain", program=name, estimator=estimator):
        explanation = _compute_explanation(
            session, name, estimator, aggregate_profiles(profiles)
        )
    if cache_on:
        attribution_cache.store_explanation(key, explanation.to_dict())
    publish_accuracy_metrics(name, explanation.records)
    return explanation


def _compute_explanation(
    session, name: str, estimator: str, aggregate: Profile
) -> ProgramExplanation:
    program = session.program
    records = collect_branch_records(program, aggregate)
    estimates, singular = _estimator_estimates(session, estimator)
    actuals = profile_block_estimates(program, aggregate)
    by_function: dict[str, list[BranchRecord]] = {}
    for record in records:
        by_function.setdefault(record.function, []).append(record)

    block_errors: dict[str, dict[int, float]] = {}
    for function_name in program.function_names:
        cfg = program.cfg(function_name)
        function_estimates = estimates.get(function_name, {})
        function_actuals = actuals.get(function_name, {})
        block_errors[function_name] = {
            block_id: function_estimates.get(block_id, 0.0)
            - function_actuals.get(block_id, 0.0)
            for block_id in sorted(cfg.blocks)
        }
        if function_name in singular:
            continue
        ok = attribute_function_errors(
            cfg,
            session.transitions(function_name),
            function_estimates
            if estimator == "markov"
            else _markov_estimates_or_none(session, function_name)
            or function_estimates,
            by_function.get(function_name, []),
        )
        if not ok:
            singular.add(function_name)

    invocations, weighting = _invocation_weights(session, estimator)
    for record in records:
        record.global_error = record.local_error * invocations.get(
            record.function, 1.0
        )
    return ProgramExplanation(
        program=name,
        estimator=estimator,
        records=records,
        block_errors=block_errors,
        invocations=invocations,
        weighting=weighting,
        singular_functions=sorted(singular),
    )


def _markov_estimates_or_none(session, function_name: str):
    """The Markov solution for one function (the sensitivity operator's
    own fixed point), or None when singular."""
    try:
        return solve_flow_system(
            session.program.cfg(function_name),
            session.transitions(function_name),
        )
    except SingularMatrixError:
        return None


def _invocation_weights(session, estimator: str):
    """Inter-procedural weights so branch errors rank globally."""
    try:
        return session.invocations("markov", estimator), "markov"
    except (SingularMatrixError, KeyError):
        incr("attribution.uniform_weighting")
        return (
            {name: 1.0 for name in session.program.function_names},
            "uniform",
        )


def explain_programs(
    names: list[str],
    estimator: str = "markov",
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> list[ProgramExplanation]:
    """Explain several programs, profile collection fanned out over
    ``jobs`` workers.  The explanations themselves are computed
    serially in name order, so the result (and everything rendered
    from it) is independent of the worker count."""
    from repro.suite import collect_suite_profiles

    if jobs is None or jobs > 1:
        # Warm the profile cache in parallel; the per-program explain
        # path below then collects every profile from cache.
        collect_suite_profiles(names, jobs=jobs, use_cache=use_cache)
    return [
        explain_program(name, estimator=estimator, use_cache=use_cache)
        for name in names
    ]


# ----------------------------------------------------------------------
# Rendering.


def _branch_name(explanation: ProgramExplanation, record: BranchRecord):
    return f"{explanation.program}:{record.function}:B{record.block_id}"


def render_explanations(
    explanations: list[ProgramExplanation],
    top: int = DEFAULT_TOP,
    function: Optional[str] = None,
) -> str:
    """The deterministic ``repro explain`` stdout report."""
    lines: list[str] = []
    total_records = sum(len(e.records) for e in explanations)
    scored = [
        (explanation, record)
        for explanation in explanations
        for record in explanation.scored_records
    ]
    executions = sum(record.executions for _, record in scored)
    misses = sum(record.dynamic_misses for _, record in scored)
    names = ", ".join(e.program for e in explanations)
    lines.append(
        f"explain: {names} "
        f"(estimator={explanations[0].estimator if explanations else '-'})"
    )
    lines.append(
        f"branches: {total_records} static, {len(scored)} scored, "
        f"miss rate "
        f"{(misses / executions if executions else 0.0):.2%}"
    )
    singular = sorted(
        f"{e.program}:{name}"
        for e in explanations
        for name in e.singular_functions
    )
    if singular:
        lines.append(
            f"unattributed (singular flow systems): {', '.join(singular)}"
        )

    lines.append("")
    lines.append("per-heuristic accuracy:")
    lines.append(
        f"  {'heuristic':14} {'branches':>8} {'executions':>12} "
        f"{'misses':>12} {'missrate':>9} {'attributed':>12}"
    )
    merged = accuracy_by_heuristic(
        [record for _, record in scored]
    )
    for reason, row in merged.items():
        lines.append(
            f"  {reason:14} {row.branches:>8} {row.executions:>12.1f} "
            f"{row.misses:>12.1f} {row.miss_rate:>9.2%} "
            f"{row.attributed_error:>12.4g}"
        )

    ranked = sorted(
        scored,
        key=lambda item: (
            -item[1].global_error,
            -item[1].dynamic_misses,
            item[0].program,
            item[1].function,
            item[1].block_id,
        ),
    )
    if function is not None:
        ranked = [
            item for item in ranked if item[1].function == function
        ]
    lines.append("")
    lines.append(f"worst branches (top {top}):")
    lines.append(
        f"  {'rank':>4}  {'branch':36} {'line':>5} {'kind':8} "
        f"{'heuristic':13} {'pred':>5} {'actual':>6} {'execs':>10} "
        f"{'error':>10}"
    )
    for rank, (explanation, record) in enumerate(
        ranked[: max(top, 0)], start=1
    ):
        actual = record.actual_probability
        lines.append(
            f"  {rank:>4}  {_branch_name(explanation, record):36} "
            f"{record.line:>5} {record.kind:8} {record.winner:13} "
            f"{record.predicted_probability:>5.2f} "
            f"{actual if actual is None else format(actual, '.2f'):>6} "
            f"{record.executions:>10.1f} {record.global_error:>10.4g}"
        )
        if record.error_flow:
            flow = ", ".join(
                f"B{block_id} {delta:+.3g}"
                for block_id, delta in record.error_flow
            )
            lines.append(f"        error flow: {flow}")

    if function is not None:
        lines.extend(_function_drilldown(explanations, function))
    return "\n".join(lines)


def _function_drilldown(
    explanations: list[ProgramExplanation], function: str
) -> list[str]:
    """Block-level error table for one function (the drill-down view)."""
    lines: list[str] = []
    for explanation in explanations:
        errors = explanation.block_errors.get(function)
        if errors is None:
            continue
        lines.append("")
        lines.append(
            f"block-frequency error in "
            f"{explanation.program}:{function} "
            f"(weight={explanation.invocations.get(function, 1.0):.4g} "
            f"{explanation.weighting}):"
        )
        worst = sorted(
            errors.items(), key=lambda item: (-abs(item[1]), item[0])
        )
        for block_id, error in worst[:12]:
            lines.append(f"  B{block_id:<4} err={error:+.4g}")
    if not lines:
        lines.append("")
        lines.append(f"(no function {function!r} in the explained programs)")
    return lines


def write_heatmaps(
    explanation: ProgramExplanation,
    directory: str,
    function: Optional[str] = None,
) -> list[str]:
    """Write one heatmap DOT per function under ``directory``
    (``<program>.<function>.dot``); returns the paths written.

    Estimates and the aggregate profile are recomputed from the
    (cached) analysis session rather than stored in the explanation —
    the DOT output is deterministic either way.
    """
    import os

    from repro.analysis.session import session_for_suite
    from repro.suite import collect_profiles

    from repro.attribution.heatmap import heatmap_dot

    session = session_for_suite(explanation.program)
    program = session.program
    aggregate = aggregate_profiles(
        collect_profiles(explanation.program)
    )
    estimates, _ = _estimator_estimates(session, explanation.estimator)
    actuals = profile_block_estimates(program, aggregate)
    by_function: dict[str, list[BranchRecord]] = {}
    for record in explanation.records:
        by_function.setdefault(record.function, []).append(record)
    os.makedirs(directory, exist_ok=True)
    paths: list[str] = []
    for function_name in program.function_names:
        if function is not None and function_name != function:
            continue
        dot = heatmap_dot(
            program.cfg(function_name),
            estimates.get(function_name, {}),
            actuals.get(function_name, {}),
            by_function.get(function_name, []),
            aggregate,
        )
        path = os.path.join(
            directory, f"{explanation.program}.{function_name}.dot"
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(dot + "\n")
        paths.append(path)
    return paths


def explanations_to_dict(
    explanations: list[ProgramExplanation],
) -> dict:
    """The ``repro explain --json`` payload."""
    return {
        "estimator": explanations[0].estimator if explanations else None,
        "programs": {
            explanation.program: explanation.to_dict()
            for explanation in explanations
        },
    }


def export_features(
    explanations: list[ProgramExplanation], path: str
) -> int:
    """Write the per-branch feature/label matrix as JSONL.

    One object per branch record across every explained program, each
    carrying the static features (heuristics fired with their
    probabilities, branch kind, winner) and the labels a learned
    estimator trains on (realized taken probability, dynamic
    executions, attributed error).  Returns the row count.
    """
    import json

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for explanation in explanations:
            for record in explanation.records:
                row = record.to_dict()
                row["program"] = explanation.program
                row["estimator"] = explanation.estimator
                row["actual_probability"] = record.actual_probability
                row["executions"] = record.executions
                row["mispredicted"] = record.mispredicted
                handle.write(
                    json.dumps(row, sort_keys=True) + "\n"
                )
                count += 1
    return count
