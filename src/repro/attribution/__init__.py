"""Estimator explainability: per-branch error attribution.

The estimator pipeline reports aggregate accuracy (miss rates, weight
matching); this package answers *why* those numbers are what they are:

* :mod:`repro.attribution.records` collects one record per conditional
  branch — every prediction idiom that fired, the probability the
  Markov chain actually used, and the interpreter ground truth from
  profiles;
* :mod:`repro.attribution.sensitivity` propagates each branch's
  probability error through the intra-procedural Markov flow system
  (a sparse linear solve per branch against the same ``I - P^T``
  matrix the estimator solved), attributing block-frequency error to
  the branch decisions that caused it;
* :mod:`repro.attribution.accuracy` aggregates the records into
  per-heuristic accuracy (miss rates, dynamic coverage, attributed
  error) and publishes them as metrics and ledger score rows;
* :mod:`repro.attribution.heatmap` renders CFG heatmap overlays
  (blocks shaded by frequency error, edges labelled predicted vs.
  actual probability);
* :mod:`repro.attribution.cache` persists computed explanations
  keyed by content hash, next to the profile/analysis caches;
* :mod:`repro.attribution.explain` orchestrates all of it behind the
  ``repro explain`` CLI.

Attribution is backend-agnostic (the interpreter and the compiled
backend produce byte-identical profiles) and tier-agnostic (base and
XL suite programs go through the same path).
"""

from __future__ import annotations

from repro.attribution.accuracy import (
    HeuristicAccuracy,
    accuracy_by_heuristic,
    accuracy_score_rows,
    publish_accuracy_metrics,
)
from repro.attribution.explain import (
    ProgramExplanation,
    explain_program,
    explain_programs,
    explanations_to_dict,
    export_features,
    render_explanations,
    write_heatmaps,
)
from repro.attribution.heatmap import heatmap_dot
from repro.attribution.records import BranchRecord, collect_branch_records
from repro.attribution.sensitivity import attribute_function_errors

__all__ = [
    "BranchRecord",
    "HeuristicAccuracy",
    "ProgramExplanation",
    "accuracy_by_heuristic",
    "accuracy_score_rows",
    "attribute_function_errors",
    "collect_branch_records",
    "explain_program",
    "explain_programs",
    "explanations_to_dict",
    "export_features",
    "heatmap_dot",
    "publish_accuracy_metrics",
    "render_explanations",
    "write_heatmaps",
]
