"""Per-branch attribution records: heuristics fired vs. ground truth.

One :class:`BranchRecord` per conditional branch in a program joins the
three views the rest of the pipeline keeps separate:

* **prediction** — every AST idiom that fired for the branch (in
  priority order, from :func:`repro.prediction.heuristics
  .collect_predictions`) plus the CFG-level Ball–Larus idioms
  (:mod:`repro.prediction.cfg_heuristics`), and the *winning*
  prediction the Markov transition matrix actually used;
* **ground truth** — the branch's taken/not-taken totals from the
  aggregated interpreter profiles, its realized taken probability, and
  the dynamic misses the winning prediction incurs;
* **protocol flags** — constant-folded branches are recorded (they are
  features) but flagged excluded, matching the paper's miss-rate
  scoring protocol in :mod:`repro.prediction.missrate`.

Records are plain data with a stable dict form: they serialize to the
attribution cache and to the ``repro explain --export-features`` JSONL
feature/label matrix for the future learned estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.frontend.constfold import fold_condition
from repro.prediction.cfg_heuristics import _FunctionShape
from repro.prediction.heuristics import collect_predictions
from repro.profiles.profile import Profile
from repro.program import Program

#: Every heuristic reason a record can carry, in reporting order: the
#: AST idioms by priority, then the CFG idioms, then the fallbacks.
KNOWN_REASONS = (
    "constant",
    "loop",
    "pointer",
    "error-call",
    "opcode-eq",
    "opcode-neg",
    "multiple-ands",
    "return",
    "store",
    "cfg-loop-exit",
    "cfg-call",
    "default",
)


@dataclass
class BranchRecord:
    """Everything known about one conditional branch."""

    function: str
    block_id: int
    line: int
    kind: str
    #: Every idiom that fired, priority order: ``[(reason, p), ...]``.
    fired: list[tuple[str, float]] = field(default_factory=list)
    #: The prediction the transition matrix used.
    winner: str = "default"
    predicted_probability: float = 0.5
    #: Profile ground truth (zero when the branch never executed).
    taken: float = 0.0
    not_taken: float = 0.0
    #: Constant-folded: recorded but excluded from accuracy scoring.
    is_constant: bool = False
    #: Attributed block-frequency error (filled by the sensitivity
    #: pass): L1 norm of the frequency change this branch's probability
    #: error induces, locally and weighted by estimated invocations.
    local_error: float = 0.0
    global_error: float = 0.0
    #: Blocks most perturbed by this branch: ``[(block id, delta)]``.
    error_flow: list[tuple[int, float]] = field(default_factory=list)

    @property
    def executions(self) -> float:
        return self.taken + self.not_taken

    @property
    def actual_probability(self) -> Optional[float]:
        """Realized taken probability, or None if never executed."""
        total = self.executions
        return self.taken / total if total else None

    @property
    def predicted_taken(self) -> bool:
        return self.predicted_probability >= 0.5

    @property
    def scored(self) -> bool:
        """Counts toward accuracy: executed and not constant-folded."""
        return self.executions > 0 and not self.is_constant

    @property
    def mispredicted(self) -> Optional[bool]:
        """Direction miss against the majority outcome (None if the
        branch never executed)."""
        if self.executions == 0:
            return None
        return self.predicted_taken != (self.taken >= self.not_taken)

    @property
    def dynamic_misses(self) -> float:
        return self.not_taken if self.predicted_taken else self.taken

    def to_dict(self) -> dict:
        """Stable JSON form (cache entries and the feature export)."""
        return {
            "function": self.function,
            "block": self.block_id,
            "line": self.line,
            "kind": self.kind,
            "fired": [[reason, p] for reason, p in self.fired],
            "winner": self.winner,
            "predicted_probability": self.predicted_probability,
            "taken": self.taken,
            "not_taken": self.not_taken,
            "is_constant": self.is_constant,
            "local_error": self.local_error,
            "global_error": self.global_error,
            "error_flow": [[b, d] for b, d in self.error_flow],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BranchRecord":
        return cls(
            function=str(payload["function"]),
            block_id=int(payload["block"]),
            line=int(payload["line"]),
            kind=str(payload["kind"]),
            fired=[
                (str(reason), float(p)) for reason, p in payload["fired"]
            ],
            winner=str(payload["winner"]),
            predicted_probability=float(payload["predicted_probability"]),
            taken=float(payload["taken"]),
            not_taken=float(payload["not_taken"]),
            is_constant=bool(payload["is_constant"]),
            local_error=float(payload["local_error"]),
            global_error=float(payload["global_error"]),
            error_flow=[
                (int(b), float(d)) for b, d in payload["error_flow"]
            ],
        )


def collect_branch_records(
    program: Program, profile: Profile
) -> list[BranchRecord]:
    """One record per conditional branch, in (function, block) order.

    ``profile`` is the evaluation ground truth — normally the aggregate
    of every input's profile.  The winning prediction comes from the
    program's memoized session predictor, i.e. exactly the probability
    the Markov transition matrix was built from; the CFG idioms are
    recorded as additional fired features even when an AST idiom
    outranked them.
    """
    from repro.analysis.session import AnalysisSession
    from repro.prediction.error_functions import settings_for_program

    session = AnalysisSession.of(program)
    predictor = session.predictor()
    settings = settings_for_program(program)
    p = settings.taken_probability
    records: list[BranchRecord] = []
    for function_name in program.function_names:
        cfg = program.cfg(function_name)
        outcomes = profile.branch_outcomes.get(function_name, {})
        shape: Optional[_FunctionShape] = None
        for block, branch in cfg.conditional_branches():
            winner = predictor.predict_branch(function_name, block, branch)
            fired = [
                (prediction.reason, prediction.taken_probability)
                for prediction in collect_predictions(
                    branch.condition, branch.kind, branch.origin, settings
                )
            ]
            if not fired or fired[0][0] != "constant":
                # The CFG idioms are cheap relative to the solves and
                # are genuine features even when outranked.
                if shape is None:
                    shape = _FunctionShape(cfg)
                for cfg_prediction in (
                    shape.loop_exit_heuristic(block, branch, p),
                    shape.call_heuristic(block, branch, p),
                ):
                    if cfg_prediction is not None:
                        fired.append(
                            (
                                cfg_prediction.reason,
                                cfg_prediction.taken_probability,
                            )
                        )
            outcome = outcomes.get(block.block_id)
            records.append(
                BranchRecord(
                    function=function_name,
                    block_id=block.block_id,
                    line=branch.condition.location.line,
                    kind=branch.kind,
                    fired=fired,
                    winner=winner.reason,
                    predicted_probability=winner.taken_probability,
                    taken=float(outcome.taken) if outcome else 0.0,
                    not_taken=(
                        float(outcome.not_taken) if outcome else 0.0
                    ),
                    is_constant=(
                        fold_condition(branch.condition) is not None
                    ),
                )
            )
    return records
