"""CFG heatmap overlays: where the estimate diverges from the profile.

Builds on :func:`repro.cfg.dot.cfg_to_dot` (the Figure-6 style
renderer): each block carries its estimated vs. profiled frequency and
is shaded by the magnitude of the difference (white = exact,
saturated red = the function's worst block), and each conditional edge
is labelled with the predicted probability next to the realized one
(``p=0.80 q=0.99``).  The rendering is pure text and deterministic —
two runs over the same profiles emit byte-identical DOT, whatever the
backend or worker count that produced the profiles.
"""

from __future__ import annotations

from repro.cfg.block import ControlFlowGraph
from repro.cfg.dot import cfg_to_dot
from repro.profiles.profile import Profile

from repro.attribution.records import BranchRecord

#: Errors this small render as unshaded (white) blocks.
SHADE_EPSILON = 1e-9


def _shade(intensity: float) -> str:
    """White -> red fill for an intensity in [0, 1]."""
    intensity = min(max(intensity, 0.0), 1.0)
    other = round(255 * (1.0 - 0.72 * intensity))
    return f"#ff{other:02x}{other:02x}"


def heatmap_dot(
    cfg: ControlFlowGraph,
    estimates: dict[int, float],
    actuals: dict[int, float],
    records: list[BranchRecord],
    profile: Profile,
) -> str:
    """The heatmap DOT for one function.

    ``estimates``/``actuals`` are per-block frequencies normalized to
    one function entry; ``records`` the function's branch records
    (supplying predicted probabilities); ``profile`` the aggregate
    ground truth (supplying realized branch probabilities).
    """
    errors = {
        block_id: estimates.get(block_id, 0.0)
        - actuals.get(block_id, 0.0)
        for block_id in cfg.blocks
    }
    worst = max((abs(e) for e in errors.values()), default=0.0)
    annotations: dict[int, str] = {}
    styles: dict[int, str] = {}
    for block_id in sorted(cfg.blocks):
        error = errors[block_id]
        annotations[block_id] = (
            f"est={estimates.get(block_id, 0.0):.3g} "
            f"act={actuals.get(block_id, 0.0):.3g} "
            f"err={error:+.3g}"
        )
        if worst > SHADE_EPSILON and abs(error) > SHADE_EPSILON:
            fill = _shade(abs(error) / worst)
            styles[block_id] = f'style=filled, fillcolor="{fill}"'
    edge_annotations = _branch_edge_labels(cfg, records, profile)
    return cfg_to_dot(
        cfg,
        block_annotations=annotations,
        edge_annotations=edge_annotations,
        block_styles=styles,
    )


def _branch_edge_labels(
    cfg: ControlFlowGraph,
    records: list[BranchRecord],
    profile: Profile,
) -> dict[tuple[int, int], str]:
    """``p=<predicted> q=<actual>`` labels for conditional edges."""
    by_block = {record.block_id: record for record in records}
    outcomes = profile.branch_outcomes.get(cfg.function_name, {})
    labels: dict[tuple[int, int], str] = {}
    for block, branch in cfg.conditional_branches():
        record = by_block.get(block.block_id)
        if record is None:
            continue
        p = record.predicted_probability
        outcome = outcomes.get(block.block_id)
        if outcome is not None and outcome.total:
            q_taken = outcome.taken / outcome.total
            taken_label = f"T p={p:.2f} q={q_taken:.2f}"
            fall_label = f"F p={1.0 - p:.2f} q={1.0 - q_taken:.2f}"
        else:
            taken_label = f"T p={p:.2f} q=-"
            fall_label = f"F p={1.0 - p:.2f} q=-"
        # Parallel arms (both targets equal) keep the taken label.
        labels[(block.block_id, branch.true_target)] = taken_label
        labels.setdefault(
            (block.block_id, branch.false_target), fall_label
        )
    return labels
