"""Per-heuristic accuracy aggregation over branch records.

Collapses a program's :class:`~repro.attribution.records.BranchRecord`
list into one row per winning heuristic — static branch count, dynamic
executions, dynamic misses, miss rate, and total attributed
block-frequency error — and publishes those rows three ways:

* **metrics** (:func:`publish_accuracy_metrics`) — counters and
  histograms in the process-global :mod:`repro.obs` registry, so
  ``repro stats`` / ``--format prom`` expose heuristic accuracy after
  any ``repro explain``;
* **ledger score rows** (:func:`accuracy_score_rows`) — flat
  ``{metric: value}`` rows under the ``attribution`` experiment, so
  ``repro compare --fail-on-regression`` gates each heuristic's miss
  rate longitudinally against ``baselines/attribution.json``;
* the ``repro explain`` text/JSON report itself.

Scoring follows the paper's protocol (:mod:`repro.prediction
.missrate`): constant-folded branches are excluded, and switches never
produce records in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import incr, observe

from repro.attribution.records import KNOWN_REASONS, BranchRecord


@dataclass
class HeuristicAccuracy:
    """Accuracy of one heuristic over one program's branches."""

    reason: str
    branches: int = 0
    executions: float = 0.0
    misses: float = 0.0
    attributed_error: float = 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.executions if self.executions else 0.0


def accuracy_by_heuristic(
    records: list[BranchRecord],
) -> dict[str, HeuristicAccuracy]:
    """One accuracy row per winning heuristic, in KNOWN_REASONS order
    (unknown reasons, if any, sort after the known ones by name)."""
    rows: dict[str, HeuristicAccuracy] = {}
    for record in records:
        if not record.scored:
            continue
        row = rows.get(record.winner)
        if row is None:
            row = rows[record.winner] = HeuristicAccuracy(record.winner)
        row.branches += 1
        row.executions += record.executions
        row.misses += record.dynamic_misses
        row.attributed_error += record.global_error
    order = {reason: rank for rank, reason in enumerate(KNOWN_REASONS)}
    return {
        reason: rows[reason]
        for reason in sorted(
            rows, key=lambda r: (order.get(r, len(order)), r)
        )
    }


def accuracy_score_rows(
    program: str, records: list[BranchRecord]
) -> dict[str, float]:
    """Flat ledger score rows for one program.

    Per heuristic: ``<program>.<reason>.missrate`` (the gated metric),
    ``.branches`` (static coverage) and ``.executions`` (dynamic
    coverage — deterministic, profiles are byte-identical across
    backends and job counts).  Plus program-level totals.
    """
    rows: dict[str, float] = {}
    scored = [record for record in records if record.scored]
    total_executions = sum(record.executions for record in scored)
    total_misses = sum(record.dynamic_misses for record in scored)
    rows[f"{program}.branches"] = float(len(records))
    rows[f"{program}.scored_branches"] = float(len(scored))
    rows[f"{program}.missrate"] = (
        total_misses / total_executions if total_executions else 0.0
    )
    rows[f"{program}.attributed_error"] = sum(
        record.global_error for record in scored
    )
    for reason, row in accuracy_by_heuristic(records).items():
        rows[f"{program}.{reason}.missrate"] = row.miss_rate
        rows[f"{program}.{reason}.branches"] = float(row.branches)
        rows[f"{program}.{reason}.executions"] = row.executions
    return rows


def publish_accuracy_metrics(
    program: str, records: list[BranchRecord]
) -> None:
    """Fold one program's accuracy into the process-global metrics
    registry (picked up by ``repro stats`` and the run ledger's
    counter deltas)."""
    incr("attribution.programs")
    incr("attribution.branches", len(records))
    for record in records:
        if not record.scored:
            continue
        prefix = f"attribution.heuristic.{record.winner}"
        incr(f"{prefix}.branches")
        incr(f"{prefix}.executions", record.executions)
        incr(f"{prefix}.misses", record.dynamic_misses)
        observe("attribution.branch_error", record.global_error)
