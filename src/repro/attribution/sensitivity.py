"""Error propagation through the Markov flow system (linear
sensitivity analysis).

The intra-procedural Markov estimator solves ``(I - P^T) f = e`` with
the entry pinned at 1.  ``f`` is a smooth function of every branch
probability, and its derivative has a closed linear form: for a branch
in block ``i`` with arms ``t``/``u`` and taken-probability ``p``,

    d f / d p  =  (I - P^T)^{-1} r,      r = f_i (delta_t - delta_u)

— one extra solve against the *same* matrix the estimator already
factored, in the same sparse dict-row form (this is the
linear-equational view of probabilistic program analysis: error flows
through exactly the operator the estimate flowed through).

:func:`attribute_function_errors` evaluates, for every executed
non-constant branch, the first-order change in the block-frequency
vector if that branch alone used its *profiled* probability ``q``
instead of the predicted ``p``:

    delta_f  ≈  (q - p) * damping * (I - P^T)^{-1} f_i (delta_t - delta_u)

The L1 norm of ``delta_f`` is the branch's **attributed
block-frequency error** — how much of the function's estimate-vs-
profile discrepancy traces back to that prediction — and the largest
components of ``delta_f`` are its error flow (which blocks the bad
probability actually distorted).  The same damping-retry ladder as
:func:`repro.estimators.intra.markov.solve_flow_system` keeps
degenerate CFGs solvable, and a function whose system stays singular is
skipped (reported, never fatal).
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.block import CondBranch, ControlFlowGraph
from repro.estimators.intra.markov import DAMPING_FACTORS
from repro.linalg.solve import SingularMatrixError
from repro.linalg.sparse import SparseRows, solve_flow_rows
from repro.obs import incr, span

from repro.attribution.records import BranchRecord

#: How many per-block delta components each record keeps (the error
#: flow drill-down).  Components beyond this are summarized into the
#: L1 norm only.
ERROR_FLOW_TOP = 6

#: Frequency deltas below this are dropped from the error flow.
FLOW_EPSILON = 1e-12


def _build_rows(
    block_ids: list[int],
    index: dict[int, int],
    transitions: dict[int, dict[int, float]],
    damping: float,
) -> SparseRows:
    """The ``I - damping * P^T`` system, identical in construction to
    :func:`repro.estimators.intra.markov.solve_flow_system`."""
    rows: SparseRows = [{i: 1.0} for i in range(len(block_ids))]
    for source, row in transitions.items():
        j = index[source]
        for target, probability in row.items():
            target_row = rows[index[target]]
            target_row[j] = target_row.get(j, 0.0) - probability * damping
    return rows


def _solvable_rows(
    cfg: ControlFlowGraph,
    transitions: dict[int, dict[int, float]],
    block_ids: list[int],
    index: dict[int, int],
) -> Optional[tuple[SparseRows, float]]:
    """The first damped system on the estimator's ladder that solves,
    or None when even heavy damping leaves it singular."""
    rhs = [0.0] * len(block_ids)
    rhs[index[cfg.entry_id]] = 1.0
    for damping in DAMPING_FACTORS:
        rows = _build_rows(block_ids, index, transitions, damping)
        try:
            solve_flow_rows(rows, rhs)
        except SingularMatrixError:
            continue
        return rows, damping
    return None


def attribute_function_errors(
    cfg: ControlFlowGraph,
    transitions: dict[int, dict[int, float]],
    estimates: dict[int, float],
    records: list[BranchRecord],
) -> bool:
    """Fill ``local_error`` and ``error_flow`` on ``records`` (all from
    one function) by sensitivity solves against the function's flow
    system.  Returns False when the system is singular even damped (the
    records keep their zero attribution).

    ``transitions`` are the Markov transition probabilities the
    estimate was built from; ``estimates`` the solved block
    frequencies.  Only executed, non-constant branches are attributed —
    a branch the profile never saw has no measured probability to
    propagate.
    """
    block_ids = sorted(cfg.blocks)
    index = {block_id: i for i, block_id in enumerate(block_ids)}
    solvable = _solvable_rows(cfg, transitions, block_ids, index)
    if solvable is None:
        incr("attribution.singular_functions")
        return False
    rows, damping = solvable
    branch_targets = {
        block.block_id: terminator
        for block, terminator in cfg.conditional_branches()
    }
    for record in records:
        if not record.scored:
            continue
        terminator = branch_targets.get(record.block_id)
        actual = record.actual_probability
        if terminator is None or actual is None:
            continue
        _attribute_one(
            record, terminator, actual, rows, estimates, index, damping
        )
    return True


def _attribute_one(
    record: BranchRecord,
    terminator: CondBranch,
    actual: float,
    rows: SparseRows,
    estimates: dict[int, float],
    index: dict[int, int],
    damping: float,
) -> None:
    source_frequency = estimates.get(record.block_id, 0.0)
    probability_error = actual - record.predicted_probability
    scale = probability_error * damping * source_frequency
    if scale == 0.0 or terminator.true_target == terminator.false_target:
        record.local_error = 0.0
        record.error_flow = []
        return
    rhs = [0.0] * len(rows)
    rhs[index[terminator.true_target]] += scale
    rhs[index[terminator.false_target]] -= scale
    with span("attribution.solve", function=record.function):
        try:
            delta = solve_flow_rows(rows, rhs)
        except SingularMatrixError:  # pragma: no cover - rows pre-checked
            incr("attribution.singular_branches")
            return
    incr("attribution.solves")
    reverse = {i: block_id for block_id, i in index.items()}
    flow = [
        (reverse[i], value)
        for i, value in enumerate(delta)
        if abs(value) > FLOW_EPSILON
    ]
    flow.sort(key=lambda item: (-abs(item[1]), item[0]))
    record.local_error = sum(abs(value) for _, value in flow)
    record.error_flow = flow[:ERROR_FLOW_TOP]


def function_error_vector(
    cfg: ControlFlowGraph,
    estimates: dict[int, float],
    actuals: dict[int, float],
) -> dict[int, float]:
    """Signed per-block frequency error (estimate minus profile), both
    normalized to one function entry — the quantity the heatmap shades
    and the sensitivity pass explains."""
    return {
        block_id: estimates.get(block_id, 0.0) - actuals.get(block_id, 0.0)
        for block_id in sorted(cfg.blocks)
    }
