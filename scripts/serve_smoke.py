#!/usr/bin/env python3
"""CI smoke test for the analysis daemon.

Starts ``python -m repro serve`` as a real subprocess, waits for its
ready line, fires a 64-way concurrent burst mixing repeat sources,
novel sources, and one malformed source (the structured-400 path),
then checks ``/metrics`` for session-pool hits and per-tenant
counters.  It then exercises the observability surface: a W3C
``traceparent`` round-trip, flight-recorder retention of injected
errors (``/debug/traces?kind=errors``), span trees on ``/debug/slow``,
and an on-demand flamegraph from ``/debug/profile``.  Finally it fires
a second wave and SIGTERMs the server while that wave is in flight:
every accepted request must complete (200) or be refused up front
(503) — never dropped — and the process must exit 0 (clean drain).

Run from the repo root (``python scripts/serve_smoke.py``).  Set
``SERVE_SMOKE_JSON`` to write the latency/metrics report,
``SERVE_SMOKE_PROFILE`` to save the flamegraph SVG, and
``SERVE_SMOKE_FLIGHT`` to dump the flight-recorder rings (all three
are uploaded as CI artifacts).  Exits non-zero if any check fails.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.serve import ServeClient  # noqa: E402

#: Concurrent clients in the burst (the acceptance floor).
CONCURRENCY = 64
#: Requests per client in the burst.
ROUNDS = 2
#: Distinct repeat sources shared across the burst.
REPEATS = 8
#: Clients in the in-flight wave that SIGTERM interrupts.
DRAIN_WAVE = 16

MALFORMED = "int main( { return 0 }\n"

_CHECKS: list[bool] = []


def check(ok: bool, label: str) -> None:
    print(f"{'ok  ' if ok else 'FAIL'} {label}")
    _CHECKS.append(bool(ok))


def _source(index: int) -> str:
    return (
        f"int work{index}(int x) {{\n"
        f"    int j; int total; total = 0;\n"
        f"    for (j = 0; j < {4 + index % 5}; j = j + 1) {{\n"
        f"        if (j % 2 == 0) {{ total = total + x; }}\n"
        f"        else {{ total = total - 1; }}\n"
        f"    }}\n"
        f"    return total;\n"
        f"}}\n"
        f"int main() {{ return work{index}({index}); }}\n"
    )


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(
        len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _metric_value(metrics: str, name: str) -> float:
    for line in metrics.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[-1])
    return 0.0


def main() -> int:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "4",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    assert process.stdout is not None
    try:
        ready = process.stdout.readline().strip()
        match = re.search(r"http://([^\s:]+):(\d+)", ready)
        if not match:
            print(f"FAIL no ready line from the daemon (got {ready!r})")
            process.kill()
            return 1
        host, port = match.group(1), int(match.group(2))
        print(f"daemon ready at {host}:{port} (pid {process.pid})")

        # ------------------------------------------------------------
        # Burst: repeat + novel + one malformed source, two tenants.
        statuses: list[int] = []
        latencies: list[float] = []
        malformed: list[tuple[int, dict | None]] = []
        lock = threading.Lock()
        barrier = threading.Barrier(CONCURRENCY)

        def client_main(worker: int) -> None:
            client = ServeClient(
                host, port, timeout=120, tenant=f"smoke{worker % 2}"
            )
            barrier.wait()
            for round_ in range(ROUNDS):
                if worker == 0 and round_ == 0:
                    response = client.analyze(MALFORMED, name="broken.c")
                    with lock:
                        malformed.append(
                            (response.status, response.payload)
                        )
                    continue
                if round_ % 2:
                    source = _source(1000 + worker)
                    name = f"novel{worker}.c"
                else:
                    source = _source(worker % REPEATS)
                    name = f"repeat{worker % REPEATS}.c"
                clock = time.perf_counter()
                response = client.analyze(source, name=name)
                elapsed = time.perf_counter() - clock
                with lock:
                    statuses.append(response.status)
                    latencies.append(elapsed)

        threads = [
            threading.Thread(target=client_main, args=(worker,))
            for worker in range(CONCURRENCY)
        ]
        burst_clock = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        burst_wall = time.perf_counter() - burst_clock

        expected = CONCURRENCY * ROUNDS - 1
        check(
            len(statuses) == expected,
            f"burst completed: {len(statuses)}/{expected} responses "
            f"in {burst_wall:.2f}s",
        )
        bad = [status for status in statuses if status != 200]
        check(not bad, f"burst all 200 (non-200: {bad[:10]})")
        status, payload = malformed[0] if malformed else (0, None)
        check(
            status == 400
            and isinstance(payload, dict)
            and set(payload) == {
                "error", "file", "line", "col", "trace_id",
            },
            f"malformed source -> structured 400 (got {status}, "
            f"{payload})",
        )

        # ------------------------------------------------------------
        # Metrics: pool hits and per-tenant counters must be visible.
        probe = ServeClient(host, port, timeout=30)
        metrics = probe.metrics()
        hits = _metric_value(metrics, "repro_serve_pool_hits_total")
        check(hits > 0, f"session pool served repeats ({hits:.0f} hits)")
        for tenant in ("smoke0", "smoke1"):
            needle = f'tenant="{tenant}"'
            check(
                needle in metrics, f"per-tenant counters ({needle})"
            )
        health = probe.healthz().payload or {}
        check(
            health.get("status") == "ok"
            and bool(health.get("version")),
            f"healthz ok, version {health.get('version')!r}",
        )

        # ------------------------------------------------------------
        # Tracing: W3C traceparent round-trips through the daemon.
        trace_id = "ab" * 16
        traced = probe.analyze(
            _source(1), name="traced.c",
            traceparent=f"00-{trace_id}-{'cd' * 8}-01",
        )
        check(
            traced.status == 200
            and traced.trace_id == trace_id
            and traced.payload["server"]["trace_id"] == trace_id,
            f"traceparent round-trip (echoed {traced.trace_id})",
        )

        # ------------------------------------------------------------
        # Flight recorder: injected failures survive the healthy burst.
        injected: set[str] = set()
        for index in range(5):
            bad = probe._request(
                "POST",
                "/v1/analyze",
                body=json.dumps(
                    {"source": _source(index), "backend": "nope"}
                ).encode(),
            )
            if bad.status == 400 and bad.trace_id:
                injected.add(bad.trace_id)
        flight = probe.traces(kind="errors").payload or {}
        retained = {
            record.get("trace_id")
            for record in flight.get("traces", [])
        }
        check(
            len(injected) == 5 and injected <= retained,
            f"flight recorder retained {len(injected & retained)}/"
            f"{len(injected)} injected errors",
        )
        slow = probe.slow(limit=5).payload or {}
        slow_records = slow.get("traces", [])
        check(
            bool(slow_records)
            and all(r.get("spans") for r in slow_records),
            f"/debug/slow returns span trees "
            f"({len(slow_records)} records)",
        )
        flight_target = os.environ.get("SERVE_SMOKE_FLIGHT")
        if flight_target:
            with open(flight_target, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "errors": flight,
                        "slow": slow,
                        "recent": probe.traces(limit=20).payload,
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
            print(f"flight dump -> {flight_target}")

        # ------------------------------------------------------------
        # Profiler: an on-demand flamegraph while traffic flows.
        noise_stop = threading.Event()

        def noise_main() -> None:
            client = ServeClient(host, port, timeout=120)
            index = 3000
            while not noise_stop.is_set():
                client.analyze(
                    _source(index), name=f"noise{index}.c"
                )
                index += 1

        noise = threading.Thread(target=noise_main)
        noise.start()
        try:
            svg = probe.profile(seconds=1.0, interval_ms=2.0)
        finally:
            noise_stop.set()
            noise.join()
        check(
            svg.status == 200
            and svg.text.startswith("<svg ")
            and "</svg>" in svg.text,
            f"/debug/profile returns a flamegraph SVG "
            f"({len(svg.text)} bytes)",
        )
        profile_target = os.environ.get("SERVE_SMOKE_PROFILE")
        if profile_target:
            with open(
                profile_target, "w", encoding="utf-8"
            ) as handle:
                handle.write(svg.text)
            print(f"flamegraph -> {profile_target}")

        # ------------------------------------------------------------
        # Drain: SIGTERM while a wave is in flight; zero drops.
        drain_results: list[object] = []

        def drain_main(worker: int) -> None:
            client = ServeClient(
                host, port, timeout=120, tenant="drain"
            )
            try:
                response = client.analyze(
                    _source(2000 + worker), name=f"drain{worker}.c"
                )
                outcome: object = response.status
            except OSError:
                # Connection refused after the listener closed: the
                # request was never accepted, so it cannot be dropped.
                outcome = "refused"
            with lock:
                drain_results.append(outcome)

        wave = [
            threading.Thread(target=drain_main, args=(worker,))
            for worker in range(DRAIN_WAVE)
        ]
        for thread in wave:
            thread.start()
        time.sleep(0.05)
        process.send_signal(signal.SIGTERM)
        for thread in wave:
            thread.join()
        exit_code = process.wait(timeout=60)

        check(exit_code == 0, f"clean drain exit (code {exit_code})")
        dropped = [
            outcome
            for outcome in drain_results
            if outcome not in (200, 503, "refused")
        ]
        served = sum(
            1 for outcome in drain_results if outcome == 200
        )
        check(
            len(drain_results) == DRAIN_WAVE and not dropped,
            f"drain dropped nothing ({served} served, "
            f"{sum(1 for o in drain_results if o == 503)} refused 503, "
            f"{sum(1 for o in drain_results if o == 'refused')} "
            f"never accepted; anomalies: {dropped})",
        )
        check(served > 0, "drain wave: at least one request served")

        report = {
            "concurrency": CONCURRENCY,
            "requests": len(statuses),
            "burst_wall_s": round(burst_wall, 5),
            "rps": int(len(statuses) / burst_wall) if burst_wall else 0,
            "latency_s": {
                "p50": round(_percentile(latencies, 0.50), 5),
                "p90": round(_percentile(latencies, 0.90), 5),
                "p99": round(_percentile(latencies, 0.99), 5),
            },
            "pool_hits": hits,
            "drain": {
                "wave": DRAIN_WAVE,
                "served": served,
                "exit_code": exit_code,
            },
            "passed": all(_CHECKS),
        }
        text = json.dumps(report, indent=2, sort_keys=True)
        print(f"serve smoke report:\n{text}")
        target = os.environ.get("SERVE_SMOKE_JSON")
        if target:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    failed = _CHECKS.count(False)
    print(
        f"{len(_CHECKS) - failed}/{len(_CHECKS)} checks passed"
        + (f" ({failed} FAILED)" if failed else "")
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
